"""Concrete passes wrapping the library's compilation entry points.

Each pass adapts one existing entry point — specification generation
(``revgen``), reversible synthesis (``tbs``/``dbs``/``esopbs``/...),
cascade simplification (``revsimp``/``templ``), Clifford+T mapping
(``rptm``), quantum-gate cancellation and T-par phase folding, device
routing, and statistics — to the uniform :class:`Pass` interface the
:class:`~.runner.Pipeline` executes.  Passes are stateless value
objects: constructor arguments select the algorithm variant, and
:meth:`Pass.signature` exposes them so cached results can be keyed by
(pass, parameters, input content).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.statistics import circuit_statistics
from ..mapping.barenco import map_to_clifford_t
from ..mapping.routing import CouplingMap, route_circuit
from ..optimization.simplify import cancel_adjacent_gates, simplify_reversible
from ..optimization.templates import template_optimize
from ..optimization.tpar import tpar_optimize
from ..synthesis.bdd_based import bdd_synthesis, verify_bdd_synthesis
from ..synthesis.decomposition import decomposition_based_synthesis
from ..synthesis.esop_based import esop_synthesis, verify_esop_circuit
from ..synthesis.exact import exact_synthesis
from ..synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)
from ..verify.checker import EquivalenceChecker, default_checker
from ..verify.verdict import Verdict
from .state import FlowState, PipelineError


class Pass:
    """One step of a compilation flow.

    Subclasses set :attr:`name` (the RevKit-style command name),
    :attr:`stage` (coarse flow phase), :attr:`reads`/:attr:`writes`
    (store fields consumed/produced — the cache keys on the content of
    ``reads``), and implement :meth:`run`.

    Attributes:
        name: short command-style identifier (``tbs``, ``rptm``, ...).
        stage: flow phase — ``generate``, ``synthesis``,
            ``optimization``, ``mapping``, ``routing`` or ``analysis``.
        reads: store fields whose content determines the result.
        writes: store fields the pass replaces.
        cacheable: whether ``(name, signature())`` faithfully
            identifies the computation; passes wrapping opaque
            callables must clear this to opt out of result caching.
        fallback: optional alternate pass the pipeline runs instead
            when this one fails and the error policy is
            ``on_error='fallback'`` (see :meth:`with_fallback`).
    """

    name: str = "pass"
    stage: str = "transform"
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    cacheable: bool = True
    fallback: Optional["Pass"] = None

    def with_fallback(self, alternate: "Pass") -> "Pass":
        """Declare an alternate pass to run when this one fails.

        The alternate only runs under ``on_error='fallback'`` (a
        :class:`~.runner.Pipeline` policy); its record carries
        ``fallback_for=<this pass's name>`` in its details.  The
        alternate should write the same store fields — the pipeline
        does not check compatibility beyond normal cache keying.

        Args:
            alternate: the pass to substitute on failure.

        Returns:
            ``self`` (chainable at construction sites).
        """
        self.fallback = alternate
        return self

    def run(self, state: FlowState) -> FlowState:
        """Execute the pass on a copy of ``state`` and return it.

        Args:
            state: the incoming flow store (never mutated).

        Returns:
            A new :class:`~.state.FlowState` with ``writes`` updated.
        """
        raise NotImplementedError

    def signature(self) -> Tuple[Any, ...]:
        """Return the parameter tuple that identifies this variant.

        Two pass instances with equal ``(name, signature())`` must
        compute the same function of their ``reads`` fields; the
        result cache relies on this.
        """
        return ()

    def verify(self, before: FlowState, after: FlowState) -> Optional[str]:
        """Check that the pass preserved the flow's semantics.

        The default implementation delegates to the tiered
        :meth:`check` with the default checker; subclasses may
        override this hook with a custom check (the pipeline then
        reports it under the ``custom`` tier).

        Args:
            before: store content entering the pass.
            after: store content the pass produced.

        Returns:
            ``None`` on success (or when no check applies), else a
            human-readable failure message.
        """
        verdict = self._tiered_check(default_checker(), before, after)
        return verdict.detail if verdict.failed else None

    #: marks the un-overridden hook so :meth:`check` can tell library
    #: tiered checks apart from user-defined ``verify`` overrides.
    verify.__tiered__ = True  # type: ignore[attr-defined]

    def check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Run the tiered semantic check for this pass.

        Library passes implement :meth:`_tiered_check` and get full
        tier/cost/verdict reporting; a subclass that overrides the
        legacy :meth:`verify` hook instead is honored verbatim and
        reported under the ``custom`` tier.

        Args:
            checker: the pipeline's
                :class:`~repro.verify.EquivalenceChecker`.
            before: store content entering the pass.
            after: store content the pass produced.

        Returns:
            The :class:`~repro.verify.Verdict` of the check.
        """
        if getattr(type(self).verify, "__tiered__", False):
            return self._tiered_check(checker, before, after)
        started = time.perf_counter()
        failure = self.verify(before, after)
        seconds = time.perf_counter() - started
        if failure is not None:
            return Verdict.reject("custom", failure, seconds)
        return Verdict.accept(
            "custom", seconds, detail="pass-defined verify() hook"
        )

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Tiered check implementation.

        The base implementation covers passes that leave the flow's
        semantic payloads alone (statistics, reporting, cache
        bookkeeping): when every semantic store field is unchanged —
        by identity or by value — the pass trivially preserved the
        semantics and the check passes at the ``syntactic`` tier.
        A pass that did rewrite a semantic field but declares no
        check gets an explicit skip, never a silent pass.
        """
        for field in ("function", "reversible", "quantum", "routing"):
            old = getattr(before, field)
            new = getattr(after, field)
            if old is new:
                continue
            if old is not None and new is not None and old == new:
                continue
            return checker.no_check(
                f"pass {self.name!r} declares no functional check"
            )
        return Verdict.accept(
            "syntactic", detail="semantic store fields unchanged"
        )

    def statistics(self, before: FlowState, after: FlowState) -> Dict[str, Any]:
        """Report pass-specific statistics for the flow record.

        Args:
            before: store content entering the pass.
            after: store content the pass produced.

        Returns:
            A dict of extra metrics merged into the pass record.
        """
        return {}

    def __repr__(self) -> str:
        """Return ``Name(param=value, ...)`` for debugging."""
        params = ", ".join(repr(v) for v in self.signature())
        return f"{type(self).__name__}({params})"


# ----------------------------------------------------------------------
# specification generation (revgen)
# ----------------------------------------------------------------------
#: generator family -> function name in :mod:`repro.revkit.generators`
#: (imported lazily inside :meth:`GeneratePass.run`; importing the
#: ``revkit`` package here would be circular, since its shell builds on
#: this pass manager).
_GENERATORS: Dict[str, str] = {
    "hwb": "hwb",
    "random": "random_permutation",
    "adder": "modular_adder",
    "rotate": "bit_rotation",
    "gray": "gray_code",
    "bent": "inner_product_bent",
    "randfunc": "random_function",
}

#: public registry of generator families, in shell option order — the
#: single source the shell's ``revgen`` and the flow builders consult.
GENERATOR_KINDS = tuple(_GENERATORS)

#: shell option spelling -> generator keyword argument.
_GENERATOR_KWARGS = {"const": "constant"}

#: defaults applied when an option is omitted, mirroring the shell's
#: historical behavior (a fixed seed keeps passes deterministic and
#: therefore cacheable).
_GENERATOR_DEFAULTS = {
    "random": {"seed": 0},
    "randfunc": {"seed": 0},
    "adder": {"constant": 1},
}

#: options each generator family accepts; anything else is silently
#: dropped, matching the shell's historical tolerance of irrelevant
#: options (``revgen --hwb 4 --seed 3`` ignored the seed).
_GENERATOR_OPTIONS = {
    "hwb": (),
    "random": ("seed",),
    "adder": ("constant",),
    "rotate": ("amount",),
    "gray": (),
    "bent": (),
    "randfunc": ("seed",),
}


class GeneratePass(Pass):
    """Produce a benchmark specification — the ``revgen`` command.

    Args:
        kind: generator family (``hwb``, ``random``, ``adder``,
            ``rotate``, ``gray``, ``bent``, ``randfunc``).
        n: problem size in bits/variables.
        **params: family-specific options (``seed``, ``const``,
            ``amount``); options irrelevant to the family are
            ignored, matching the shell's historical tolerance.
    """

    stage = "generate"
    reads = ()
    writes = ("function",)

    def __init__(self, kind: str, n: int, **params) -> None:
        """Select the generator family, size and options."""
        if kind not in _GENERATORS:
            raise PipelineError(f"unknown generator {kind!r}")
        self.name = f"revgen-{kind}"
        self.kind = kind
        self.n = int(n)
        accepted = _GENERATOR_OPTIONS[kind]
        merged = dict(_GENERATOR_DEFAULTS.get(kind, {}))
        for key, value in params.items():
            key = _GENERATOR_KWARGS.get(key, key)
            if key in accepted:
                merged[key] = int(value)
        self.params = dict(sorted(merged.items()))

    def signature(self) -> Tuple[Any, ...]:
        """Return (kind, n, sorted options)."""
        return (self.kind, self.n, tuple(self.params.items()))

    def run(self, state: FlowState) -> FlowState:
        """Write the generated specification into ``function``."""
        out = state.copy()
        out.function = self._generate()
        return out

    def _generate(self):
        """Build the specification (deterministic in the signature)."""
        from ..revkit import generators

        generate = getattr(generators, _GENERATORS[self.kind])
        return generate(self.n, **self.params)

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Re-run the (deterministic) generator and compare outputs."""
        import time as _time

        started = _time.perf_counter()
        expected = self._generate()
        seconds = _time.perf_counter() - started
        if after.function == expected:
            return Verdict.accept(
                "specification",
                seconds,
                detail="regenerated specification matches",
                checks=1,
            )
        return Verdict.reject(
            "specification",
            "stored specification differs from the regenerated one",
            seconds,
            checks=1,
        )


# ----------------------------------------------------------------------
# reversible synthesis (tbs / dbs / exs / esopbs / bdd)
# ----------------------------------------------------------------------
_SYNTHESIS_METHODS = ("tbs", "tbs-bidir", "dbs", "exact", "esop", "bdd")


def _resolvable_by_name(function) -> bool:
    """Return whether ``function`` is its module's attribute of that name.

    Only then is ``(module, qualname)`` a faithful cache identity;
    closures and lambdas share qualnames across distinct behaviors.
    """
    import sys

    module = sys.modules.get(getattr(function, "__module__", None) or "")
    qualname = getattr(function, "__qualname__", "")
    return (
        module is not None
        and "." not in qualname
        and getattr(module, qualname, None) is function
    )


class SynthesisPass(Pass):
    """Synthesize the specification into an MCT cascade.

    Wraps the reversible-synthesis portfolio of Sec. V: pass
    ``method`` to pick transformation-based (``tbs``), bidirectional
    (``tbs-bidir``), decomposition-based (``dbs``), exact search
    (``exact``), ESOP-based (``esop``) or BDD-based (``bdd``)
    synthesis — or give an explicit callable mapping a
    :class:`~repro.boolean.permutation.BitPermutation` to a
    :class:`~repro.synthesis.reversible.ReversibleCircuit`.

    Args:
        method: one of the method names above, or a callable.
    """

    stage = "synthesis"
    reads = ("function",)
    writes = ("reversible", "artifacts")

    def __init__(self, method="tbs") -> None:
        """Select the synthesis method (name or callable)."""
        if callable(method) and not isinstance(method, str):
            self.method = method
            self.name = getattr(method, "__name__", "custom")
            # (module, qualname) only identifies a resolvable
            # module-level function; closures/lambdas sharing a
            # qualname would collide in the cache, so opt out.
            self.cacheable = _resolvable_by_name(method)
        elif method in _SYNTHESIS_METHODS:
            self.method = method
            self.name = method
        else:
            raise PipelineError(f"unknown synthesis method {method!r}")

    def signature(self) -> Tuple[Any, ...]:
        """Return the method name (or callable qualname) as the key."""
        if isinstance(self.method, str):
            return (self.method,)
        return (
            getattr(self.method, "__module__", "?"),
            getattr(self.method, "__qualname__", repr(self.method)),
        )

    def run(self, state: FlowState) -> FlowState:
        """Synthesize ``function`` into ``reversible``."""
        out = state.copy(skip=("reversible",))
        out.reversible = None
        function = state.function
        if function is None:
            raise PipelineError(f"{self.name}: no specification in store")
        if not isinstance(self.method, str):
            out.reversible = self.method(function)
            return out
        if self.method == "esop":
            if not isinstance(function, TruthTable):
                raise PipelineError("esop synthesis needs a truth table")
            out.reversible = esop_synthesis(function)
            return out
        if self.method == "bdd":
            if not isinstance(function, TruthTable):
                raise PipelineError("bdd synthesis needs a truth table")
            result = bdd_synthesis(function)
            out.reversible = result.circuit
            out.artifacts["bdd"] = result
            return out
        if not isinstance(function, BitPermutation):
            raise PipelineError(f"{self.name} synthesis needs a permutation")
        if self.method == "tbs":
            out.reversible = transformation_based_synthesis(function)
        elif self.method == "tbs-bidir":
            out.reversible = bidirectional_synthesis(function)
        elif self.method == "dbs":
            out.reversible = decomposition_based_synthesis(function)
        else:  # exact
            circuit = exact_synthesis(function)
            if circuit is None:
                raise PipelineError("exact synthesis exceeded the gate bound")
            out.reversible = circuit
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check the cascade against the specification."""
        function, cascade = after.function, after.reversible
        started = time.perf_counter()
        if cascade is None:
            return Verdict.reject(
                "specification",
                "synthesis produced no cascade",
                time.perf_counter() - started,
            )
        if self.method == "esop" and isinstance(function, TruthTable):
            ok = verify_esop_circuit(cascade, function)
            seconds = time.perf_counter() - started
            if not ok:
                return Verdict.reject(
                    "specification",
                    "esop cascade does not compute the truth table",
                    seconds,
                )
            return Verdict.accept(
                "specification", seconds, detail="esop covers agree"
            )
        if self.method == "bdd" and isinstance(function, TruthTable):
            ok = verify_bdd_synthesis(after.artifacts["bdd"], function)
            seconds = time.perf_counter() - started
            if not ok:
                return Verdict.reject(
                    "specification",
                    "bdd cascade does not compute the truth table",
                    seconds,
                )
            return Verdict.accept(
                "specification", seconds, detail="bdd evaluation agrees"
            )
        return checker.check_specification(cascade, function)


# ----------------------------------------------------------------------
# cascade optimization (revsimp / templ)
# ----------------------------------------------------------------------
class SimplifyPass(Pass):
    """Cancel and merge MCT gates — the ``revsimp`` command.

    Args:
        max_rounds: fixpoint iteration bound passed to
            :func:`~repro.optimization.simplify.simplify_reversible`.
    """

    name = "revsimp"
    stage = "optimization"
    reads = ("reversible",)
    writes = ("reversible",)

    def __init__(self, max_rounds: int = 10) -> None:
        """Store the fixpoint iteration bound."""
        self.max_rounds = max_rounds

    def signature(self) -> Tuple[Any, ...]:
        """Return (max_rounds,)."""
        return (self.max_rounds,)

    def run(self, state: FlowState) -> FlowState:
        """Rewrite ``reversible`` with the simplified cascade."""
        if state.reversible is None:
            raise PipelineError("revsimp: no reversible circuit in store")
        out = state.copy(skip=("reversible",))
        out.reversible = simplify_reversible(
            state.reversible, max_rounds=self.max_rounds
        )
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check that the cascade permutation is unchanged."""
        return checker.check_same_permutation(
            before.reversible, after.reversible
        )


class TemplatePass(Pass):
    """Apply template rewriting to the cascade — the ``templ`` command."""

    name = "templ"
    stage = "optimization"
    reads = ("reversible",)
    writes = ("reversible",)

    def run(self, state: FlowState) -> FlowState:
        """Rewrite ``reversible`` with the template-optimized cascade."""
        if state.reversible is None:
            raise PipelineError("templ: no reversible circuit in store")
        out = state.copy(skip=("reversible",))
        out.reversible = template_optimize(state.reversible)
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check that the cascade permutation is unchanged."""
        return checker.check_same_permutation(
            before.reversible, after.reversible
        )


# ----------------------------------------------------------------------
# Clifford+T mapping (rptm)
# ----------------------------------------------------------------------
class MapToCliffordTPass(Pass):
    """Map the cascade (or an MCT-bearing circuit) to Clifford+T.

    Wraps :func:`~repro.mapping.barenco.map_to_clifford_t` — the
    ``rptm`` command when ``relative_phase`` is true (Sec. V's
    relative-phase Toffoli mapping [42]).

    Args:
        relative_phase: use RCCX ladders (cheaper T-count).
        only_if_needed: when reading a quantum circuit, skip mapping
            if it contains no multi-controlled gates.
        prefer_clean: widen the register with clean ancillae instead
            of borrowing dirty idle lines.
    """

    stage = "mapping"
    reads = ("reversible", "quantum")
    writes = ("quantum",)

    def __init__(
        self,
        relative_phase: bool = True,
        only_if_needed: bool = False,
        prefer_clean: bool = True,
    ) -> None:
        """Store the mapping options."""
        self.name = "rptm" if relative_phase else "ctmap"
        self.relative_phase = relative_phase
        self.only_if_needed = only_if_needed
        self.prefer_clean = prefer_clean

    def signature(self) -> Tuple[Any, ...]:
        """Return the mapping option triple."""
        return (self.relative_phase, self.only_if_needed, self.prefer_clean)

    def _uses_quantum_source(self, state: FlowState) -> bool:
        """Decide whether the pass lowers ``quantum`` or the cascade.

        The shell's ``rptm`` maps the cascade; the device flow's
        on-need lowering (``only_if_needed``) operates on the current
        quantum circuit even when a (possibly stale) cascade is still
        in the store from an earlier stage.
        """
        if state.reversible is None:
            return True
        return self.only_if_needed and state.quantum is not None

    def run(self, state: FlowState) -> FlowState:
        """Write the Clifford+T circuit into ``quantum``.

        Maps the reversible cascade when it is the flow's source;
        with ``only_if_needed`` (the device flow) the current quantum
        circuit is lowered instead, and left untouched when it has no
        multi-controlled gates.
        """
        if not self._uses_quantum_source(state):
            out = state.copy(skip=("quantum",))
            out.quantum = map_to_clifford_t(
                state.reversible,
                relative_phase=self.relative_phase,
                prefer_clean=self.prefer_clean,
            )
            return out
        if state.quantum is None:
            raise PipelineError("rptm: no circuit in store")
        lowerable = ("ccx", "ccz", "mcx", "mcz", "cz")
        if self.only_if_needed and not any(
            g.name in lowerable for g in state.quantum.gates
        ):
            return state.copy()
        out = state.copy(skip=("quantum",))
        out.quantum = map_to_clifford_t(
            state.quantum,
            relative_phase=self.relative_phase,
            prefer_clean=self.prefer_clean,
        )
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check the mapped circuit against its actual source.

        Cascade lowering uses the ancilla-aware basis-state tiers;
        quantum-circuit lowering uses the extended-unitary tiers,
        which also cover register widening by clean ancillae.  An
        untouched circuit (on-need lowering found nothing to lower)
        passes syntactically without any simulation.
        """
        if after.quantum is None:
            return checker.no_check("mapping produced no quantum circuit")
        if not self._uses_quantum_source(before):
            return checker.check_mapped_circuit(
                after.quantum, before.reversible
            )
        if before.quantum is not None:
            if (
                before.quantum.num_qubits == after.quantum.num_qubits
                and before.quantum.gates == after.quantum.gates
            ):
                return Verdict.accept(
                    "syntactic", detail="circuit unchanged"
                )
            return checker.check_extended_unitary(
                before.quantum, after.quantum
            )
        return checker.no_check("mapping had no source circuit to compare")

    def statistics(self, before: FlowState, after: FlowState) -> Dict[str, Any]:
        """Report whether the output is pure Clifford+T."""
        if after.quantum is None:
            return {}
        return {"clifford_t": after.quantum.is_clifford_t()}


# ----------------------------------------------------------------------
# quantum-circuit optimization (cancel / tpar)
# ----------------------------------------------------------------------
class CancelPass(Pass):
    """Cancel adjacent inverse gate pairs — the ``cancel`` command."""

    name = "cancel"
    stage = "optimization"
    reads = ("quantum",)
    writes = ("quantum",)

    def run(self, state: FlowState) -> FlowState:
        """Rewrite ``quantum`` with adjacent inverses cancelled."""
        if state.quantum is None:
            raise PipelineError("cancel: no quantum circuit in store")
        out = state.copy(skip=("quantum",))
        out.quantum = cancel_adjacent_gates(state.quantum)
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check unitary equivalence up to global phase."""
        return checker.check_same_unitary(before.quantum, after.quantum)


class TparPass(Pass):
    """Fold the phase polynomial to cut T-count — the ``tpar`` command.

    Args:
        pre_cancel: run gate cancellation before folding (the shell's
            ``tpar`` does, exposing more parity collisions).
        post_cancel: run gate cancellation after folding.
    """

    name = "tpar"
    stage = "optimization"
    reads = ("quantum",)
    writes = ("quantum",)

    def __init__(self, pre_cancel: bool = True, post_cancel: bool = True) -> None:
        """Store the cancellation bracketing options."""
        self.pre_cancel = pre_cancel
        self.post_cancel = post_cancel

    def signature(self) -> Tuple[Any, ...]:
        """Return (pre_cancel, post_cancel)."""
        return (self.pre_cancel, self.post_cancel)

    def run(self, state: FlowState) -> FlowState:
        """Rewrite ``quantum`` with merged phase rotations."""
        if state.quantum is None:
            raise PipelineError("tpar: no quantum circuit in store")
        out = state.copy(skip=("quantum",))
        work = state.quantum
        if self.pre_cancel:
            work = cancel_adjacent_gates(work)
        work = tpar_optimize(work)
        if self.post_cancel:
            work = cancel_adjacent_gates(work)
        out.quantum = work
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check unitary equivalence up to global phase."""
        return checker.check_same_unitary(before.quantum, after.quantum)


# ----------------------------------------------------------------------
# device routing
# ----------------------------------------------------------------------
class RoutePass(Pass):
    """Insert SWAPs to fit a device coupling graph.

    Wraps :func:`~repro.mapping.routing.route_circuit` (the stage the
    paper delegates to IBM's stack in Sec. VII).

    Args:
        coupling: target device topology.
        initial_layout: optional logical-to-physical seed layout.
    """

    name = "route"
    stage = "routing"
    reads = ("quantum",)
    writes = ("quantum", "routing")

    def __init__(
        self,
        coupling: CouplingMap,
        initial_layout: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Store the device topology and optional seed layout."""
        self.coupling = coupling
        self.initial_layout = (
            tuple(initial_layout) if initial_layout is not None else None
        )

    def signature(self) -> Tuple[Any, ...]:
        """Return (num_qubits, sorted edges, initial layout)."""
        edges = tuple(sorted(tuple(sorted(e)) for e in self.coupling.edges))
        return (self.coupling.num_qubits, edges, self.initial_layout)

    def run(self, state: FlowState) -> FlowState:
        """Write the routed circuit and layout bookkeeping."""
        if state.quantum is None:
            raise PipelineError("route: no quantum circuit in store")
        out = state.copy(skip=("quantum",))
        result = route_circuit(
            state.quantum, self.coupling, initial_layout=self.initial_layout
        )
        out.quantum = result.circuit
        out.routing = result
        return out

    def _tiered_check(
        self,
        checker: EquivalenceChecker,
        before: FlowState,
        after: FlowState,
    ) -> Verdict:
        """Check the routed circuit under its layout.

        The dense check builds unitaries at the *routed* (device)
        width, so tier selection uses that width, not the logical one;
        wider circuits fall back to seeded layout-aware probes.
        """
        return checker.check_routing(before.quantum, after.routing)

    def statistics(self, before: FlowState, after: FlowState) -> Dict[str, Any]:
        """Report the SWAP count of the routing result."""
        if after.routing is None:
            return {}
        return {"swaps": after.routing.swap_count}


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
class StatisticsPass(Pass):
    """Collect ``ps -c`` statistics into the artifacts store."""

    name = "ps"
    stage = "analysis"
    reads = ("quantum",)
    writes = ("artifacts",)

    def run(self, state: FlowState) -> FlowState:
        """Store the statistics bundle under ``artifacts['statistics']``."""
        if state.quantum is None:
            raise PipelineError("ps: no quantum circuit in store")
        out = state.copy()
        out.artifacts["statistics"] = circuit_statistics(state.quantum)
        return out

    def statistics(self, before: FlowState, after: FlowState) -> Dict[str, Any]:
        """Report the collected statistics bundle."""
        stats = after.artifacts.get("statistics")
        return {"statistics": stats} if stats is not None else {}

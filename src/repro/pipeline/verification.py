"""Functional-verification helpers used by the pass manager.

Sec. IX of the paper lists verification as an obligation of the design
automation flow: after every rewrite the circuit must still implement
its specification.  These helpers back the :class:`~.runner.Pipeline`
``verify`` flag — permutation checks for reversible cascades, and the
dense column/unitary checks for mapped quantum circuits (feasible for
the small widths the paper's artifacts use).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..boolean.permutation import BitPermutation
from ..core.circuit import QuantumCircuit
from ..synthesis.reversible import ReversibleCircuit

#: Widest circuit for which dense unitary checks are attempted.
MAX_VERIFY_QUBITS = 10


def check_mapped_circuit(
    quantum: QuantumCircuit,
    reversible: ReversibleCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS + 1,
) -> Optional[str]:
    """Check a mapped circuit against its reversible specification.

    The mapped circuit may use extra (clean) ancilla lines; the check
    is that ``|x>|0> -> e^{i phi}|P(x)>|0>`` for every data input
    ``x``, with ``P`` the reversible circuit's permutation.

    Args:
        quantum: the Clifford+T (or otherwise mapped) circuit.
        reversible: the MCT cascade it must implement.
        max_qubits: skip (return ``None``) above this width.

    Returns:
        ``None`` when the check passes or is skipped, else a message
        describing the first mismatching basis input.
    """
    from ..core.unitary import circuit_unitary

    if quantum.num_qubits > max_qubits:
        return None
    perm = reversible.permutation()
    unitary = circuit_unitary(quantum)
    n = reversible.num_lines
    for x in range(1 << n):
        column = unitary[:, x]
        index = int(np.argmax(np.abs(column)))
        if (
            abs(abs(column[index]) - 1.0) > 1e-9
            or np.abs(column).sum() - abs(column[index]) > 1e-9
            or index != perm(x)
        ):
            return f"mismatch at input {x}"
    return None


def check_same_unitary(
    before: QuantumCircuit,
    after: QuantumCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS,
) -> Optional[str]:
    """Check two circuits for unitary equivalence up to global phase.

    Args:
        before: the circuit entering the pass.
        after: the circuit the pass produced.
        max_qubits: skip (return ``None``) above this width.

    Returns:
        ``None`` when equivalent (or skipped), else a message.
    """
    from ..core.unitary import circuit_unitary

    if before.num_qubits != after.num_qubits:
        return "pass changed the circuit width"
    if before.num_qubits > max_qubits:
        return None
    if before.has_measurements() or after.has_measurements():
        return None
    u_before = circuit_unitary(before)
    u_after = circuit_unitary(after)
    return _compare_up_to_phase(u_before, u_after)


def check_extended_unitary(
    before: QuantumCircuit,
    after: QuantumCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS + 1,
) -> Optional[str]:
    """Check a lowering that may have appended clean ancilla qubits.

    The widened circuit must act as ``|psi>|0> -> (U|psi>)|0>`` with
    ``U`` the original circuit's unitary (ancillae returned clean, no
    leakage), up to one global phase.

    Args:
        before: the original circuit on ``n`` qubits.
        after: the lowered circuit on ``n`` or more qubits (extra
            lines appended above).
        max_qubits: skip (return ``None``) when ``after`` is wider.

    Returns:
        ``None`` when equivalent (or skipped), else a message.
    """
    from ..core.unitary import circuit_unitary

    if after.num_qubits < before.num_qubits:
        return "pass narrowed the circuit"
    if after.num_qubits > max_qubits:
        return None
    if before.has_measurements() or after.has_measurements():
        return None
    u_before = circuit_unitary(before)
    u_after = circuit_unitary(after)
    dim = 1 << before.num_qubits
    if np.abs(u_after[dim:, :dim]).max(initial=0.0) > 1e-7:
        return "lowered circuit leaks into the ancilla subspace"
    return _compare_up_to_phase(u_before, u_after[:dim, :dim])


def _compare_up_to_phase(u_before, u_after) -> Optional[str]:
    """Compare two equal-shape matrices up to one global phase."""
    # strip the global phase using the largest entry of the product
    overlap = u_after.conj().T @ u_before
    phase = overlap[np.unravel_index(np.argmax(np.abs(overlap)), overlap.shape)]
    if abs(abs(phase) - 1.0) > 1e-7:
        return "pass changed the circuit unitary"
    if not np.allclose(u_before, phase * u_after, atol=1e-7):
        return "pass changed the circuit unitary"
    return None


def check_same_permutation(
    before: ReversibleCircuit, after: ReversibleCircuit
) -> Optional[str]:
    """Check that a cascade rewrite preserved the permutation.

    Args:
        before: the cascade entering the pass.
        after: the cascade the pass produced.

    Returns:
        ``None`` when both cascades realize the same permutation,
        else a message.
    """
    if before.num_lines != after.num_lines:
        return "pass changed the line count"
    if before.permutation() != after.permutation():
        return "pass changed the realized permutation"
    return None


def check_specification(
    reversible: ReversibleCircuit, function
) -> Optional[str]:
    """Check a synthesized cascade against its Boolean specification.

    Args:
        reversible: the synthesized MCT cascade.
        function: a :class:`~repro.boolean.permutation.BitPermutation`
            (checked exactly) — other specification types are skipped
            here because their line embedding is synthesis-specific.

    Returns:
        ``None`` when the cascade matches (or the check is skipped),
        else a message.
    """
    if isinstance(function, BitPermutation):
        if reversible.permutation() != function:
            return "synthesized cascade does not realize the permutation"
    return None

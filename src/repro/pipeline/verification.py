"""Legacy functional-verification helpers (now a tiered-checker shim).

Sec. IX of the paper lists verification as an obligation of the design
automation flow: after every rewrite the circuit must still implement
its specification.  The pass manager now runs the tiered
:class:`~repro.verify.EquivalenceChecker` directly; this module keeps
the old helper-function surface for callers like the RevKit shell, but
every helper returns a :class:`~repro.verify.Verdict` instead of the
old ``Optional[str]``.

That signature change fixes a silent-skip bug: the old helpers
returned ``None`` both for *passed* and for *skipped-above-the-width-
limit*, so a caller could report a circuit "verified" that was never
checked.  A :class:`~repro.verify.Verdict` keeps the two outcomes
distinct (``verdict.passed`` vs. ``verdict.skipped``).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.circuit import QuantumCircuit
from ..synthesis.reversible import ReversibleCircuit
from ..verify.checker import EquivalenceChecker, default_checker
from ..verify.verdict import Verdict

#: Widest circuit for which dense unitary checks are attempted.
MAX_VERIFY_QUBITS = 10


def _checker(max_qubits: int) -> EquivalenceChecker:
    """Build a checker whose dense/table limits honor ``max_qubits``."""
    base = default_checker()
    if (
        max_qubits == base.max_dense_qubits
        and max_qubits <= base.max_table_lines
    ):
        return base
    return replace(
        base,
        max_dense_qubits=max_qubits,
        max_table_lines=max(base.max_table_lines, max_qubits),
    )


def check_mapped_circuit(
    quantum: QuantumCircuit,
    reversible: ReversibleCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS,
) -> Verdict:
    """Check a mapped circuit against its reversible specification.

    The mapped circuit may use extra (clean) ancilla lines; the check
    is that ``|x>|0> -> e^{i phi}|P(x)>|0>`` for every data input
    ``x``, with ``P`` the reversible circuit's permutation.

    Args:
        quantum: the Clifford+T (or otherwise mapped) circuit.
        reversible: the MCT cascade it must implement.
        max_qubits: widest *data register* checked densely; wider
            circuits fall back to probes or an explicit skip.

    Returns:
        The tier's :class:`~repro.verify.Verdict` — a skip is
        explicit, never conflated with a pass.
    """
    return _checker(max_qubits).check_mapped_circuit(quantum, reversible)


def check_same_unitary(
    before: QuantumCircuit,
    after: QuantumCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS,
) -> Verdict:
    """Check two circuits for unitary equivalence up to global phase.

    Args:
        before: the circuit entering the pass.
        after: the circuit the pass produced.
        max_qubits: widest circuit checked with dense unitaries;
            Clifford remainders and probe tiers still apply above it.

    Returns:
        The tier's :class:`~repro.verify.Verdict`.
    """
    return _checker(max_qubits).check_same_unitary(before, after)


def check_extended_unitary(
    before: QuantumCircuit,
    after: QuantumCircuit,
    max_qubits: int = MAX_VERIFY_QUBITS,
) -> Verdict:
    """Check a lowering that may have appended clean ancilla qubits.

    The widened circuit must act as ``|psi>|0> -> (U|psi>)|0>`` with
    ``U`` the original circuit's unitary (ancillae returned clean, no
    leakage), up to one global phase.

    Args:
        before: the original circuit on ``n`` qubits.
        after: the lowered circuit on ``n`` or more qubits (extra
            lines appended above).
        max_qubits: widest original register checked densely.

    Returns:
        The tier's :class:`~repro.verify.Verdict`.
    """
    return _checker(max_qubits).check_extended_unitary(before, after)


def check_same_permutation(
    before: ReversibleCircuit, after: ReversibleCircuit
) -> Verdict:
    """Check that a cascade rewrite preserved the permutation.

    Args:
        before: the cascade entering the pass.
        after: the cascade the pass produced.

    Returns:
        The tier's :class:`~repro.verify.Verdict` (tier
        ``permutation`` for exhaustive tables, ``probes`` for wide
        cascades checked on sampled inputs).
    """
    return default_checker().check_same_permutation(before, after)


def check_specification(reversible: ReversibleCircuit, function) -> Verdict:
    """Check a synthesized cascade against its Boolean specification.

    Args:
        reversible: the synthesized MCT cascade.
        function: a :class:`~repro.boolean.permutation.BitPermutation`
            (checked exactly) — other specification types are skipped
            here because their line embedding is synthesis-specific.

    Returns:
        The tier's :class:`~repro.verify.Verdict` — an explicit skip
        for non-permutation specifications.
    """
    return default_checker().check_specification(reversible, function)

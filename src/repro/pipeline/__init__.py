"""Unified compilation pipeline — the pass manager.

The paper's artifact is a *compilation flow* (Sec. VI, Eq. (5)):
specification generation, reversible synthesis, cascade
simplification, Clifford+T mapping, T-count optimization, device
routing.  This subsystem makes that flow a first-class object:

* :class:`~.passes.Pass` — one step, wrapping an existing entry point
  (``transformation_based_synthesis``, ``simplify_reversible``,
  ``map_to_clifford_t``, ``tpar_optimize``, ``route_circuit``, ...);
* :class:`~.runner.Pipeline` — the runner: per-pass timing,
  gate-count/T-count deltas, fail-fast functional verification behind
  a flag, and a content-keyed result cache so repeated flows skip
  recomputation;
* :mod:`~.flows` — declarative presets (:data:`~.flows.EQ5`,
  :data:`~.flows.QSHARP`, :data:`~.flows.DEVICE`) mirroring the
  paper's pipelines.

The RevKit shell, the Q#/ProjectQ framework flows and the paper-flow
benchmarks all dispatch through this package.
"""

from . import flows
from .cache import PassCache, shared_cache
from .flows import DEVICE, EQ5, QSHARP, Flow, device, eq5, qsharp
from .passes import (
    GENERATOR_KINDS,
    CancelPass,
    GeneratePass,
    MapToCliffordTPass,
    Pass,
    RoutePass,
    SimplifyPass,
    StatisticsPass,
    SynthesisPass,
    TemplatePass,
    TparPass,
)
from .runner import (
    PassRecord,
    Pipeline,
    PipelineResult,
    VerificationError,
    format_records,
    state_metrics,
)
from .state import FlowState, PipelineError, state_key, state_token

__all__ = [
    "flows",
    "PassCache",
    "shared_cache",
    "DEVICE",
    "EQ5",
    "QSHARP",
    "Flow",
    "device",
    "eq5",
    "qsharp",
    "GENERATOR_KINDS",
    "CancelPass",
    "GeneratePass",
    "MapToCliffordTPass",
    "Pass",
    "RoutePass",
    "SimplifyPass",
    "StatisticsPass",
    "SynthesisPass",
    "TemplatePass",
    "TparPass",
    "PassRecord",
    "Pipeline",
    "PipelineResult",
    "VerificationError",
    "format_records",
    "state_metrics",
    "FlowState",
    "PipelineError",
    "state_key",
    "state_token",
]

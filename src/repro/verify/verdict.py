"""The verdict value: what one equivalence check decided, and how.

Every check run by the tiered :class:`~.checker.EquivalenceChecker`
produces a :class:`Verdict` — the tier that ran, whether it passed,
failed or was skipped, how long it took, and (for enumerating or
randomized tiers) how many inputs it exercised.  Pass records carry
the verdict verbatim, so a verified compilation can state for every
pass *which* check vouched for it, and a skipped check is always
visible instead of masquerading as a pass (the silent-skip bug the
legacy dense helpers had).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Verdict status values.
PASSED = "passed"
FAILED = "failed"
SKIPPED = "skipped"

#: Tier names a verdict may carry, cheapest first (``custom`` marks a
#: user-defined ``Pass.verify`` override, ``cache`` a replay of an
#: entry verified when first computed, ``none`` a check that could not
#: run at all).
TIERS = (
    "syntactic",
    "permutation",
    "specification",
    "stabilizer",
    "dense",
    "probes",
    "custom",
    "cache",
    "none",
)


@dataclass(frozen=True)
class Verdict:
    """The outcome of one equivalence check.

    Attributes:
        status: ``"passed"``, ``"failed"`` or ``"skipped"``.
        tier: which tier ran (one of :data:`TIERS`); for a skipped
            check, the tier that *would* have been needed (``none``
            when no tier applies at all).
        detail: failure message, skip reason, or a short note on what
            the passing tier established.
        seconds: wall-clock cost of the check.
        checks: number of inputs exercised — basis inputs for the
            enumerating tiers, probe states for the randomized tier,
            0 when not meaningful.
    """

    status: str
    tier: str
    detail: str = ""
    seconds: float = 0.0
    checks: int = 0

    @property
    def passed(self) -> bool:
        """Whether the check ran and established equivalence."""
        return self.status == PASSED

    @property
    def failed(self) -> bool:
        """Whether the check ran and found a semantic difference."""
        return self.status == FAILED

    @property
    def skipped(self) -> bool:
        """Whether no applicable tier could run the check."""
        return self.status == SKIPPED

    @classmethod
    def accept(
        cls, tier: str, seconds: float = 0.0, detail: str = "", checks: int = 0
    ) -> "Verdict":
        """Build a passing verdict.

        Args:
            tier: the tier that established equivalence.
            seconds: wall-clock cost of the check.
            detail: optional note on what the tier established.
            checks: inputs exercised (basis inputs / probes).

        Returns:
            A ``passed`` :class:`Verdict`.
        """
        return cls(PASSED, tier, detail, seconds, checks)

    @classmethod
    def reject(
        cls, tier: str, detail: str, seconds: float = 0.0, checks: int = 0
    ) -> "Verdict":
        """Build a failing verdict.

        Args:
            tier: the tier that found the difference.
            detail: human-readable description of the mismatch.
            seconds: wall-clock cost of the check.
            checks: inputs exercised before the mismatch.

        Returns:
            A ``failed`` :class:`Verdict`.
        """
        return cls(FAILED, tier, detail, seconds, checks)

    @classmethod
    def skip(cls, tier: str, reason: str, seconds: float = 0.0) -> "Verdict":
        """Build an explicitly-skipped verdict.

        Args:
            tier: the tier that would have been needed (``none`` when
                no tier applies).
            reason: why no applicable tier could run.
            seconds: wall-clock cost of deciding to skip.

        Returns:
            A ``skipped`` :class:`Verdict`.
        """
        return cls(SKIPPED, tier, reason, seconds)

    def describe(self) -> str:
        """Return a one-line human-readable summary of the verdict."""
        base = f"{self.status} (tier {self.tier}"
        if self.checks:
            base += f", {self.checks} inputs"
        base += f", {self.seconds * 1e3:.2f}ms)"
        if self.detail:
            base += f": {self.detail}"
        return base

"""The first-class verification pass.

:class:`VerifyPass` turns end-to-end verification into an ordinary
pipeline stage: it reads whatever relation the flow store currently
holds — quantum circuit vs. reversible cascade (layout-aware after
routing), cascade vs. Boolean specification — runs the cheapest sound
tier via the :class:`~.checker.EquivalenceChecker`, stores the
:class:`~.verdict.Verdict` under ``artifacts['verification']``, and
fails the flow on a rejection.  Because it is a normal
:class:`~repro.pipeline.passes.Pass`, it composes with result caching
(the checker configuration participates in the cache key) and with the
resilience policies like any other stage.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Union

from ..pipeline.passes import Pass
from ..pipeline.state import FlowState
from .checker import EquivalenceChecker, as_checker, default_checker
from .verdict import Verdict


class VerifyPass(Pass):
    """Verify the flow store's strongest available relation.

    Args:
        checker: an :class:`~.checker.EquivalenceChecker`, a mode
            string (``"auto"``/``"strict"``), ``True``, or ``None``
            for the default tiered checker.
    """

    name = "verify"
    stage = "verification"
    reads = ("function", "reversible", "quantum", "routing")
    writes = ("artifacts",)

    def __init__(
        self,
        checker: Union[EquivalenceChecker, str, bool, None] = None,
    ) -> None:
        """Resolve and store the checker configuration."""
        resolved = as_checker(checker if checker is not None else "auto")
        self.checker = resolved if resolved is not None else default_checker()

    def signature(self) -> Tuple[Any, ...]:
        """Return the checker configuration as the cache identity."""
        return self.checker.signature()

    def run(self, state: FlowState) -> FlowState:
        """Verify the store and record the verdict as an artifact.

        Args:
            state: the incoming flow store.

        Returns:
            A copy of the store with the verdict under
            ``artifacts['verification']``.

        Raises:
            repro.pipeline.VerificationError: when the check rejects,
                or (in strict mode) when no tier could run it.
        """
        verdict = self._store_verdict(state)
        if verdict.failed or (verdict.skipped and self.checker.strict):
            from ..pipeline.runner import VerificationError

            raise VerificationError(
                f"pass {self.name!r} "
                + (
                    f"failed verification (tier {verdict.tier})"
                    if verdict.failed
                    else "could not verify the store under strict mode "
                    f"(tier {verdict.tier})"
                )
                + f": {verdict.detail}"
            )
        out = state.copy()
        out.artifacts["verification"] = verdict
        return out

    def check(self, checker, before: FlowState, after: FlowState) -> Verdict:
        """Report the verdict this pass computed (no second check).

        Args:
            checker: the pipeline's checker (unused — this pass runs
                its own configured checker inside :meth:`run`).
            before: store content entering the pass.
            after: store content the pass produced.

        Returns:
            The :class:`~.verdict.Verdict` stored by :meth:`run`, so
            the pass record names the tier that actually ran.
        """
        verdict = after.artifacts.get("verification")
        if isinstance(verdict, Verdict):
            return verdict
        return self._store_verdict(before)

    def statistics(
        self, before: FlowState, after: FlowState
    ) -> Dict[str, Any]:
        """Report the verification tier and status for the record."""
        verdict = after.artifacts.get("verification")
        if not isinstance(verdict, Verdict):
            return {}
        return {"tier": verdict.tier, "verdict": verdict.status}

    def _store_verdict(self, state: FlowState) -> Verdict:
        """Pick and run the strongest check the store supports."""
        checker = self.checker
        if state.quantum is not None and state.reversible is not None:
            if state.routing is not None:
                n = state.reversible.num_lines
                layout = state.routing.initial_layout
                if len(layout) < n:
                    return checker.no_check(
                        "routing layout does not cover the cascade's "
                        "data register"
                    )
                in_map = [layout[i] for i in range(n)]
                out_map = [state.routing.position_of[p] for p in in_map]
                return checker.check_mapped_circuit(
                    state.quantum, state.reversible, in_map, out_map
                )
            return checker.check_mapped_circuit(
                state.quantum, state.reversible
            )
        if state.reversible is not None and state.function is not None:
            return checker.check_specification(
                state.reversible, state.function
            )
        return checker.no_check(
            "store holds no specification/implementation pair to compare"
        )

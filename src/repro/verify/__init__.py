"""Tiered equivalence checking — verification that scales past 2^n.

Sec. IX of the paper makes functional verification an obligation of
the design-automation flow.  This subsystem discharges it with a
*tiered* strategy instead of dense ``2^n`` unitaries everywhere:

* :class:`~.checker.EquivalenceChecker` picks the cheapest sound
  check per pass — permutation tables for reversible cascades,
  the stabilizer-tableau identity test for Clifford circuits (any
  width, polynomial), dense unitaries as the small-width oracle, and
  seeded random state-fidelity probes as the any-width fallback;
* :class:`~.verdict.Verdict` records which tier ran, its cost and its
  outcome — a skipped check is always explicit, never a silent pass;
* :class:`~.passes.VerifyPass` exposes end-to-end verification as an
  ordinary pipeline stage that composes with caching and resilience.

Surfaced through ``Pipeline(verify=...)``,
``repro.compile(verify="auto"|"strict"|"off")``, ``Target.verify``
and the CLI ``--verify`` flag.  Tier selection rules and soundness
guarantees are documented in docs/ARCHITECTURE.md ("Tiered
verification").
"""

from . import tiers
from .checker import (
    DEFAULT_MAX_DENSE_QUBITS,
    DEFAULT_MAX_PROBE_QUBITS,
    DEFAULT_MAX_TABLE_LINES,
    DEFAULT_PROBES,
    MODES,
    EquivalenceChecker,
    as_checker,
    default_checker,
)
from .verdict import Verdict

__all__ = [
    "tiers",
    "DEFAULT_MAX_DENSE_QUBITS",
    "DEFAULT_MAX_PROBE_QUBITS",
    "DEFAULT_MAX_TABLE_LINES",
    "DEFAULT_PROBES",
    "MODES",
    "EquivalenceChecker",
    "as_checker",
    "default_checker",
    "Verdict",
    "VerifyPass",
]


def __getattr__(name: str):
    """Resolve :class:`VerifyPass` lazily to avoid an import cycle.

    The pass subclasses :class:`repro.pipeline.passes.Pass`, while the
    pipeline's runner imports this package for checker resolution —
    deferring the pass import until first attribute access breaks the
    cycle without hiding the symbol from ``repro.verify.VerifyPass``.
    """
    if name == "VerifyPass":
        from .passes import VerifyPass

        return VerifyPass
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The tiered equivalence checker: cheapest sound check per pass.

:class:`EquivalenceChecker` picks, for every kind of semantic check a
pass needs, the cheapest tier that is sound for the circuits at hand
and wraps the outcome in a :class:`~.verdict.Verdict`:

1. **syntactic** — identical gate lists (free, exact);
2. **permutation** — integer bit-simulation of reversible cascades
   and classical (X/CNOT/Toffoli/SWAP) circuits over every basis
   input (exact, ``O(2^n . gates)`` in the *data* width only);
3. **stabilizer** — the composed-tableau identity test for Clifford
   circuits, applied after stripping the common gate prefix/suffix
   (exact at any width, polynomial);
4. **dense** — full-unitary comparison, used as the small-width
   oracle and for non-Clifford remainders whose joint support is
   narrow enough to compact;
5. **probes** — seeded random product-state fidelity probes, the
   any-width fallback (sound rejection, probabilistic acceptance).

Checks that no tier can run return an explicitly *skipped* verdict —
never a silent pass — and ``mode="strict"`` lets callers escalate
skips to hard failures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..boolean.permutation import BitPermutation
from ..core.circuit import QuantumCircuit
from ..synthesis.reversible import ReversibleCircuit
from . import tiers
from .verdict import Verdict

#: Widest register for which dense unitary checks are attempted.
DEFAULT_MAX_DENSE_QUBITS = 10

#: Widest register for which statevector probes are attempted.
DEFAULT_MAX_PROBE_QUBITS = 20

#: Widest data register enumerated exhaustively (2^n inputs).
DEFAULT_MAX_TABLE_LINES = 16

#: Probe count of the randomized tier.
DEFAULT_PROBES = 8

#: Seed deriving the (reproducible) probe states.
DEFAULT_SEED = 2018

#: Verification modes ``as_checker`` accepts as strings.
MODES = ("auto", "strict", "off")


@dataclass(frozen=True)
class EquivalenceChecker:
    """Tier-selection policy plus the width/probe/seed configuration.

    Attributes:
        mode: ``"auto"`` (skips are reported but tolerated) or
            ``"strict"`` (the pipeline escalates skipped checks to
            :class:`~repro.pipeline.runner.VerificationError`).
        max_dense_qubits: widest register for the dense-unitary tier.
        max_probe_qubits: widest register for the randomized
            statevector-probe tier.
        max_table_lines: widest *data* register enumerated
            exhaustively by the permutation tier (``2^n`` inputs).
        probes: number of random probes of the randomized tier.
        seed: seed deriving the probe states (fixed by default, so
            verification is reproducible run to run).
        atol: numeric tolerance of the dense and probe tiers.
    """

    mode: str = "auto"
    max_dense_qubits: int = DEFAULT_MAX_DENSE_QUBITS
    max_probe_qubits: int = DEFAULT_MAX_PROBE_QUBITS
    max_table_lines: int = DEFAULT_MAX_TABLE_LINES
    probes: int = DEFAULT_PROBES
    seed: int = DEFAULT_SEED
    atol: float = 1e-7

    def __post_init__(self) -> None:
        """Validate the mode name.

        Raises:
            ValueError: for modes other than ``auto``/``strict``.
        """
        if self.mode not in ("auto", "strict"):
            raise ValueError(
                f"unknown verification mode {self.mode!r}; use 'auto' "
                "or 'strict' (or 'off' via as_checker)"
            )

    @property
    def strict(self) -> bool:
        """Whether skipped checks should fail the compilation."""
        return self.mode == "strict"

    def signature(self) -> Tuple:
        """Return the configuration tuple for cache keying.

        Returns:
            A tuple identifying every field that affects verdicts.
        """
        return (
            self.mode,
            self.max_dense_qubits,
            self.max_probe_qubits,
            self.max_table_lines,
            self.probes,
            self.seed,
            self.atol,
        )

    # ------------------------------------------------------------------
    # cascade-level checks
    # ------------------------------------------------------------------
    def check_same_permutation(
        self, before: ReversibleCircuit, after: ReversibleCircuit
    ) -> Verdict:
        """Check that a cascade rewrite preserved the permutation.

        Enumerates every basis input up to ``max_table_lines`` data
        lines (exact), and falls back to seeded random basis-input
        probes at larger widths.

        Args:
            before: the cascade entering the pass.
            after: the cascade the pass produced.

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        started = time.perf_counter()
        if before.num_lines != after.num_lines:
            return Verdict.reject(
                "permutation",
                "pass changed the line count",
                time.perf_counter() - started,
            )
        n = before.num_lines
        if n <= self.max_table_lines:
            for x in range(1 << n):
                if before.apply(x) != after.apply(x):
                    return Verdict.reject(
                        "permutation",
                        "pass changed the realized permutation "
                        f"(input {x})",
                        time.perf_counter() - started,
                        checks=x + 1,
                    )
            return Verdict.accept(
                "permutation", time.perf_counter() - started, checks=1 << n
            )
        rng = np.random.default_rng(self.seed)
        count = max(1, self.probes)
        for i in range(count):
            x = int(rng.integers(0, 1 << n))
            if before.apply(x) != after.apply(x):
                return Verdict.reject(
                    "probes",
                    "pass changed the realized permutation "
                    f"(probe input {x})",
                    time.perf_counter() - started,
                    checks=i + 1,
                )
        return Verdict.accept(
            "probes",
            time.perf_counter() - started,
            detail=f"{count} random basis inputs agree",
            checks=count,
        )

    def check_specification(
        self, reversible: ReversibleCircuit, function
    ) -> Verdict:
        """Check a synthesized cascade against its specification.

        Args:
            reversible: the synthesized MCT cascade.
            function: a :class:`~repro.boolean.permutation.BitPermutation`
                is checked exactly on every input; other specification
                kinds are skipped here (their line embedding is
                synthesis-specific and checked by the synthesis pass
                itself).

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        started = time.perf_counter()
        if not isinstance(function, BitPermutation):
            return Verdict.skip(
                "none",
                f"specification kind {type(function).__name__} has a "
                "synthesis-specific embedding; no generic check applies",
                time.perf_counter() - started,
            )
        n = reversible.num_lines
        if n > self.max_table_lines:
            return Verdict.skip(
                "permutation",
                f"{n} lines exceed the {self.max_table_lines}-line "
                "exhaustive-table limit",
                time.perf_counter() - started,
            )
        for x in range(1 << n):
            if reversible.apply(x) != function(x):
                return Verdict.reject(
                    "permutation",
                    "synthesized cascade does not realize the "
                    f"permutation (input {x})",
                    time.perf_counter() - started,
                    checks=x + 1,
                )
        return Verdict.accept(
            "permutation", time.perf_counter() - started, checks=1 << n
        )

    # ------------------------------------------------------------------
    # circuit-level checks
    # ------------------------------------------------------------------
    def check_same_unitary(
        self, before: QuantumCircuit, after: QuantumCircuit
    ) -> Verdict:
        """Check two circuits for unitary equivalence up to phase.

        Tier order: syntactic identity, stabilizer tableau on the
        stripped remainders (exact, any width), dense comparison on
        the remainders' joint support or the full register (exact,
        small widths), randomized fidelity probes (any width up to
        ``max_probe_qubits``), else an explicit skip.

        Args:
            before: the circuit entering the pass.
            after: the circuit the pass produced.

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        started = time.perf_counter()
        if before.num_qubits != after.num_qubits:
            return Verdict.reject(
                "dense",
                "pass changed the circuit width",
                time.perf_counter() - started,
            )
        n = before.num_qubits
        gates_before = tiers.semantic_gates(before)
        gates_after = tiers.semantic_gates(after)
        if gates_before == gates_after:
            return Verdict.accept(
                "syntactic",
                time.perf_counter() - started,
                detail="gate lists identical",
            )
        if before.has_measurements() or after.has_measurements():
            return Verdict.skip(
                "none",
                "measurement circuits have no unitary check",
                time.perf_counter() - started,
            )
        rest_before, rest_after = tiers.strip_common_gates(
            gates_before, gates_after
        )
        tab_before = tiers.tableau_gates(rest_before)
        tab_after = tiers.tableau_gates(rest_after)
        if tab_before is not None and tab_after is not None:
            failure = tiers.clifford_equivalence_failure(
                tab_before, tab_after, n
            )
            seconds = time.perf_counter() - started
            if failure is not None:
                return Verdict.reject("stabilizer", failure, seconds)
            return Verdict.accept(
                "stabilizer",
                seconds,
                detail="composed tableau is the identity",
            )
        support = tiers.gate_support(rest_before + rest_after)
        if 0 < len(support) <= self.max_dense_qubits and len(support) < n:
            failure = self._dense_failure(
                tiers.compact_circuit(rest_before, support),
                tiers.compact_circuit(rest_after, support),
            )
            seconds = time.perf_counter() - started
            if failure is not None:
                return Verdict.reject("dense", failure, seconds)
            return Verdict.accept(
                "dense",
                seconds,
                detail=f"rewritten region on {len(support)} qubits",
            )
        if n <= self.max_dense_qubits:
            failure = self._dense_failure(before, after)
            seconds = time.perf_counter() - started
            if failure is not None:
                return Verdict.reject("dense", failure, seconds)
            return Verdict.accept("dense", seconds)
        return self._probe_same_unitary(before, after, started)

    def _probe_same_unitary(
        self, before: QuantumCircuit, after: QuantumCircuit, started: float
    ) -> Verdict:
        """Run the randomized fidelity-probe tier for equal widths."""
        n = before.num_qubits
        if n > self.max_probe_qubits:
            return Verdict.skip(
                "probes",
                f"width {n} exceeds the {self.max_probe_qubits}-qubit "
                "probe limit",
                time.perf_counter() - started,
            )
        rng = np.random.default_rng(self.seed)
        count = max(1, self.probes)
        for i in range(count):
            probe = tiers.random_product_state(n, rng)
            out_before = probe.copy().evolve(before)
            out_after = probe.copy().evolve(after)
            overlap = tiers.overlap_magnitude(out_before, out_after)
            if abs(overlap - 1.0) > self.atol:
                return Verdict.reject(
                    "probes",
                    f"probe {i} distinguishes the circuits "
                    f"(|overlap| = {overlap:.6f})",
                    time.perf_counter() - started,
                    checks=i + 1,
                )
        return Verdict.accept(
            "probes",
            time.perf_counter() - started,
            detail=f"{count} random product states agree",
            checks=count,
        )

    def check_extended_unitary(
        self, before: QuantumCircuit, after: QuantumCircuit
    ) -> Verdict:
        """Check a lowering that may have appended clean ancillae.

        The widened circuit must act as ``|psi>|0> -> (U|psi>)|0>``
        up to one global phase, with no leakage into the ancilla
        subspace.  Equal widths delegate to
        :meth:`check_same_unitary`; wider circuits use the dense
        block check at small widths and ancilla-aware fidelity probes
        otherwise.

        Args:
            before: the original circuit on ``n`` qubits.
            after: the lowered circuit on ``n`` or more qubits.

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        started = time.perf_counter()
        if after.num_qubits < before.num_qubits:
            return Verdict.reject(
                "dense",
                "pass narrowed the circuit",
                time.perf_counter() - started,
            )
        if after.num_qubits == before.num_qubits:
            return self.check_same_unitary(before, after)
        if before.has_measurements() or after.has_measurements():
            return Verdict.skip(
                "none",
                "measurement circuits have no unitary check",
                time.perf_counter() - started,
            )
        w = after.num_qubits
        if w <= self.max_dense_qubits + 1:
            failure = self._dense_extended_failure(before, after)
            seconds = time.perf_counter() - started
            if failure is not None:
                return Verdict.reject("dense", failure, seconds)
            return Verdict.accept("dense", seconds)
        if w > self.max_probe_qubits:
            return Verdict.skip(
                "probes",
                f"width {w} exceeds the {self.max_probe_qubits}-qubit "
                "probe limit",
                time.perf_counter() - started,
            )
        rng = np.random.default_rng(self.seed)
        count = max(1, self.probes)
        for i in range(count):
            probe = tiers.random_product_state(before.num_qubits, rng)
            expected = tiers.widen_state(probe.copy().evolve(before), w)
            actual = tiers.widen_state(probe, w).evolve(after)
            overlap = tiers.overlap_magnitude(expected, actual)
            if abs(overlap - 1.0) > self.atol:
                return Verdict.reject(
                    "probes",
                    f"probe {i} distinguishes the lowered circuit "
                    f"(|overlap| = {overlap:.6f}; a low overlap also "
                    "witnesses ancilla leakage)",
                    time.perf_counter() - started,
                    checks=i + 1,
                )
        return Verdict.accept(
            "probes",
            time.perf_counter() - started,
            detail=f"{count} ancilla-aware probes agree",
            checks=count,
        )

    def check_mapped_circuit(
        self,
        quantum: QuantumCircuit,
        reversible: ReversibleCircuit,
        in_map: Optional[Sequence[int]] = None,
        out_map: Optional[Sequence[int]] = None,
    ) -> Verdict:
        """Check a mapped circuit against its reversible specification.

        The mapped circuit may use extra (clean) ancilla wires; the
        obligation is ``|x>|0> -> e^{i phi(x)}|P(x)>|0>`` for every
        data input ``x``, with ``P`` the cascade's permutation.
        Classical (Toffoli-level) circuits are checked exactly by the
        permutation tier at any wire count; Clifford+T mappings use
        the dense column check at small widths and seeded basis-input
        probes up to ``max_probe_qubits``.

        Args:
            quantum: the mapped (possibly Clifford+T) circuit.
            reversible: the MCT cascade it must implement.
            in_map: wire of data bit ``i`` at the circuit input
                (identity when ``None``) — routing layouts thread
                their initial layout here.
            out_map: wire of data bit ``i`` at the circuit output
                (defaults to ``in_map``).

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        started = time.perf_counter()
        n = reversible.num_lines
        w = quantum.num_qubits
        in_map = tuple(in_map) if in_map is not None else tuple(range(n))
        out_map = tuple(out_map) if out_map is not None else in_map
        if len(in_map) != n or len(out_map) != n:
            return Verdict.reject(
                "permutation",
                "layout maps do not cover the data register",
                time.perf_counter() - started,
            )
        if w < n or any(p >= w for p in in_map) or any(
            p >= w for p in out_map
        ):
            return Verdict.reject(
                "permutation",
                "mapped circuit is narrower than the cascade",
                time.perf_counter() - started,
            )
        if quantum.has_measurements():
            return Verdict.skip(
                "none",
                "measurement circuits have no unitary check",
                time.perf_counter() - started,
            )
        if n > self.max_table_lines:
            return Verdict.skip(
                "permutation",
                f"{n} data lines exceed the {self.max_table_lines}-line "
                "exhaustive-table limit",
                time.perf_counter() - started,
            )
        if tiers.is_classical(quantum):
            for x in range(1 << n):
                failure = self._classical_column_failure(
                    quantum, reversible, x, in_map, out_map
                )
                if failure is not None:
                    return Verdict.reject(
                        "permutation",
                        failure,
                        time.perf_counter() - started,
                        checks=x + 1,
                    )
            return Verdict.accept(
                "permutation", time.perf_counter() - started, checks=1 << n
            )
        if w <= self.max_dense_qubits + 1:
            failure = self._dense_mapped_failure(
                quantum, reversible, in_map, out_map
            )
            seconds = time.perf_counter() - started
            if failure is not None:
                return Verdict.reject("dense", failure, seconds)
            return Verdict.accept("dense", seconds, checks=1 << n)
        if w > self.max_probe_qubits:
            return Verdict.skip(
                "probes",
                f"width {w} exceeds the {self.max_probe_qubits}-qubit "
                "probe limit",
                time.perf_counter() - started,
            )
        rng = np.random.default_rng(self.seed)
        count = min(max(1, self.probes), 1 << n)
        inputs = sorted(
            int(x)
            for x in rng.choice(1 << n, size=count, replace=False)
        )
        from ..simulator.statevector import Statevector

        for i, x in enumerate(inputs):
            state = Statevector.from_basis_state(w, self._embed(x, in_map))
            state.evolve(quantum)
            expected = self._embed(reversible.apply(x), out_map)
            prob = float(abs(state.data[expected]) ** 2)
            if abs(prob - 1.0) > self.atol:
                return Verdict.reject(
                    "probes",
                    f"basis input {x} does not map to the cascade's "
                    f"output (probability {prob:.6f})",
                    time.perf_counter() - started,
                    checks=i + 1,
                )
        return Verdict.accept(
            "probes",
            time.perf_counter() - started,
            detail=f"{len(inputs)} sampled basis inputs agree",
            checks=len(inputs),
        )

    def check_routing(self, original: QuantumCircuit, routing) -> Verdict:
        """Check a routed circuit against the pre-routing original.

        Args:
            original: the circuit entering the routing pass.
            routing: the
                :class:`~repro.mapping.routing.RoutingResult` —
                routed circuit, initial layout and the wire
                permutation its SWAPs accumulated.

        Returns:
            The tier :class:`~.verdict.Verdict`.
        """
        from ..mapping.routing import verify_routing

        started = time.perf_counter()
        if routing is None:
            return Verdict.reject(
                "dense",
                "routing produced no result",
                time.perf_counter() - started,
            )
        w = routing.circuit.num_qubits
        if w <= self.max_dense_qubits:
            ok = verify_routing(original, routing, atol=self.atol)
            seconds = time.perf_counter() - started
            if not ok:
                return Verdict.reject(
                    "dense",
                    "routed circuit is not equivalent under its layout",
                    seconds,
                )
            return Verdict.accept("dense", seconds)
        if w > self.max_probe_qubits:
            return Verdict.skip(
                "probes",
                f"width {w} exceeds the {self.max_probe_qubits}-qubit "
                "probe limit",
                time.perf_counter() - started,
            )
        mapping = {
            q: routing.initial_layout[q] for q in range(original.num_qubits)
        }
        lifted = QuantumCircuit(w)
        for gate in original.gates:
            if gate.is_measurement or gate.name == "barrier":
                continue
            lifted.append(gate.remap(mapping))
        routed = _strip_measurements(routing.circuit)
        rng = np.random.default_rng(self.seed)
        count = max(1, self.probes)
        for i in range(count):
            probe = tiers.random_product_state(w, rng)
            expected = tiers.permute_wires(
                probe.copy().evolve(lifted), routing.position_of
            )
            actual = probe.copy().evolve(routed)
            overlap = tiers.overlap_magnitude(expected, actual)
            if abs(overlap - 1.0) > self.atol:
                return Verdict.reject(
                    "probes",
                    f"probe {i} distinguishes the routed circuit under "
                    f"its layout (|overlap| = {overlap:.6f})",
                    time.perf_counter() - started,
                    checks=i + 1,
                )
        return Verdict.accept(
            "probes",
            time.perf_counter() - started,
            detail=f"{count} layout-aware probes agree",
            checks=count,
        )

    def no_check(self, reason: str) -> Verdict:
        """Return an explicit skipped verdict for an uncheckable pass.

        Args:
            reason: why no tier applies to this pass.

        Returns:
            A ``skipped`` :class:`~.verdict.Verdict` of tier ``none``.
        """
        return Verdict.skip("none", reason)

    # ------------------------------------------------------------------
    # dense primitives
    # ------------------------------------------------------------------
    def _dense_failure(
        self, before: QuantumCircuit, after: QuantumCircuit
    ) -> Optional[str]:
        """Compare two equal-width circuits' dense unitaries."""
        from ..core.unitary import circuit_unitary

        u_before = circuit_unitary(before)
        u_after = circuit_unitary(after)
        return _phase_compare_failure(u_before, u_after, self.atol)

    def _dense_extended_failure(
        self, before: QuantumCircuit, after: QuantumCircuit
    ) -> Optional[str]:
        """Dense block check of an ancilla-widened lowering."""
        from ..core.unitary import circuit_unitary

        u_before = circuit_unitary(before)
        u_after = circuit_unitary(after)
        dim = 1 << before.num_qubits
        if np.abs(u_after[dim:, :dim]).max(initial=0.0) > self.atol:
            return "lowered circuit leaks into the ancilla subspace"
        return _phase_compare_failure(
            u_before, u_after[:dim, :dim], self.atol
        )

    def _dense_mapped_failure(
        self,
        quantum: QuantumCircuit,
        reversible: ReversibleCircuit,
        in_map: Tuple[int, ...],
        out_map: Tuple[int, ...],
    ) -> Optional[str]:
        """Dense per-column check of a mapped circuit."""
        from ..core.unitary import circuit_unitary

        unitary = circuit_unitary(quantum)
        n = reversible.num_lines
        for x in range(1 << n):
            column = unitary[:, self._embed(x, in_map)]
            index = int(np.argmax(np.abs(column)))
            if (
                abs(abs(column[index]) - 1.0) > self.atol
                or np.abs(column).sum() - abs(column[index]) > self.atol
                or index != self._embed(reversible.apply(x), out_map)
            ):
                return f"mismatch at input {x}"
        return None

    def _classical_column_failure(
        self,
        quantum: QuantumCircuit,
        reversible: ReversibleCircuit,
        x: int,
        in_map: Tuple[int, ...],
        out_map: Tuple[int, ...],
    ) -> Optional[str]:
        """Bit-simulate one basis input through a classical circuit."""
        result = tiers.apply_classical_gates(quantum, self._embed(x, in_map))
        if result != self._embed(reversible.apply(x), out_map):
            return f"mismatch at input {x}"
        return None

    @staticmethod
    def _embed(value: int, wire_map: Tuple[int, ...]) -> int:
        """Scatter data bits of ``value`` onto their mapped wires."""
        out = 0
        for bit, wire in enumerate(wire_map):
            out |= ((value >> bit) & 1) << wire
        return out


def _phase_compare_failure(u_before, u_after, atol: float) -> Optional[str]:
    """Compare two equal-shape matrices up to one global phase."""
    overlap = u_after.conj().T @ u_before
    phase = overlap[np.unravel_index(np.argmax(np.abs(overlap)), overlap.shape)]
    if abs(abs(phase) - 1.0) > atol:
        return "pass changed the circuit unitary"
    if not np.allclose(u_before, phase * u_after, atol=atol):
        return "pass changed the circuit unitary"
    return None


def _strip_measurements(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return the circuit's unitary gates (measurements/barriers removed)."""
    out = QuantumCircuit(circuit.num_qubits)
    for gate in circuit.gates:
        if gate.is_measurement or gate.name in ("reset", "barrier"):
            continue
        out.append(gate)
    return out


# ----------------------------------------------------------------------
# spec resolution
# ----------------------------------------------------------------------
_DEFAULT_CHECKER = EquivalenceChecker()


def default_checker() -> EquivalenceChecker:
    """Return the shared default (``auto`` mode) checker instance."""
    return _DEFAULT_CHECKER


def as_checker(
    spec: Union[EquivalenceChecker, str, bool, None]
) -> Optional[EquivalenceChecker]:
    """Resolve a ``verify=`` argument to a checker (or ``None``).

    Args:
        spec: ``None``/``False``/``"off"`` disable verification;
            ``True``/``"auto"`` select the default tiered checker;
            ``"strict"`` additionally escalates skipped checks to
            failures; an :class:`EquivalenceChecker` passes through.

    Returns:
        The resolved checker, or ``None`` when verification is off.

    Raises:
        ValueError: for unrecognized mode strings.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return _DEFAULT_CHECKER
    if isinstance(spec, EquivalenceChecker):
        return spec
    if isinstance(spec, str):
        mode = spec.lower()
        if mode == "off":
            return None
        if mode == "auto":
            return _DEFAULT_CHECKER
        if mode == "strict":
            return replace(_DEFAULT_CHECKER, mode="strict")
        raise ValueError(
            f"unknown verification mode {spec!r}; one of "
            f"{', '.join(MODES)} (or an EquivalenceChecker)"
        )
    raise ValueError(
        f"verify= accepts a bool, {', '.join(MODES)!s}, or an "
        f"EquivalenceChecker, not {type(spec).__name__}"
    )

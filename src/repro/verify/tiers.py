"""Tier primitives behind the tiered equivalence checker.

Each helper here implements one *mechanism* — gate-list stripping,
classical bit-level simulation of permutation circuits, the composed
stabilizer-tableau identity test, random product-state probes — and
stays policy-free: the :class:`~.checker.EquivalenceChecker` decides
which mechanism is the cheapest sound one for a given pair of
circuits and wraps the outcome in a :class:`~.verdict.Verdict`.

Soundness notes (also in docs/ARCHITECTURE.md):

* stripping a common gate prefix/suffix preserves equivalence up to
  global phase exactly (``U_p A U_s ~ U_p B U_s  iff  A ~ B``);
* two Clifford circuits are equal up to global phase iff the composed
  circuit ``A ; B^-1`` conjugates every ``X_i`` and ``Z_i`` to itself
  with a ``+`` sign — the tableau identity test (exact, polynomial);
* a randomized probe rejecting is always sound (a fidelity below one
  witnesses a semantic difference); a probe *accepting* is
  probabilistic, with escape probability falling exponentially in the
  probe count.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from ..simulator.stabilizer import StabilizerError, StabilizerState
from ..simulator.statevector import Statevector

#: Gate names the stabilizer tableau engine executes directly.
TABLEAU_GATES = frozenset(
    ("h", "s", "sdg", "x", "y", "z", "sx", "sxdg", "cx", "cy", "cz", "swap")
)

#: Gate names acting as classical bit permutations (the reversible
#: vocabulary), executable by integer bit-simulation at any width.
CLASSICAL_GATES = frozenset(("x", "cx", "ccx", "mcx", "swap", "cswap"))

#: Gate names that are semantic no-ops for equivalence checking.
NOOP_GATES = frozenset(("id", "barrier"))


def semantic_gates(circuit: QuantumCircuit) -> List[Gate]:
    """Return the circuit's gates with identity no-ops removed.

    Args:
        circuit: the circuit to normalize.

    Returns:
        The gate list without ``id``/``barrier`` entries.
    """
    return [g for g in circuit.gates if g.name not in NOOP_GATES]


def strip_common_gates(
    before: Sequence[Gate], after: Sequence[Gate]
) -> Tuple[List[Gate], List[Gate]]:
    """Strip the longest common gate prefix and suffix.

    Equivalence up to global phase is preserved exactly: a shared
    unitary prefix or suffix cancels on both sides.  Optimization
    passes usually rewrite a region and keep the rest, so the
    remainders are often far smaller (and more often pure Clifford or
    narrow-support) than the full circuits.

    Args:
        before: gate list entering the pass (no-ops removed).
        after: gate list the pass produced (no-ops removed).

    Returns:
        ``(before_rest, after_rest)`` — the unmatched middles.
    """
    lo = 0
    hi = min(len(before), len(after))
    while lo < hi and before[lo] == after[lo]:
        lo += 1
    tail = 0
    while (
        tail < hi - lo
        and before[len(before) - 1 - tail] == after[len(after) - 1 - tail]
    ):
        tail += 1
    return (
        list(before[lo:len(before) - tail]),
        list(after[lo:len(after) - tail]),
    )


def gate_support(gates: Iterable[Gate]) -> Tuple[int, ...]:
    """Return the sorted set of qubits the gates act on.

    Args:
        gates: the gates to inspect.

    Returns:
        Sorted tuple of touched qubit indices.
    """
    touched = set()
    for gate in gates:
        touched.update(gate.targets)
        touched.update(gate.controls)
    return tuple(sorted(touched))


def compact_circuit(
    gates: Sequence[Gate], support: Sequence[int]
) -> QuantumCircuit:
    """Re-index gates onto a compact register covering ``support``.

    Gates acting as identity outside ``support`` are unchanged by the
    re-indexing, so two compacted gate lists are equivalent up to
    global phase iff the originals are.

    Args:
        gates: gates whose qubits all lie in ``support``.
        support: sorted qubit indices to compact onto ``0..k-1``.

    Returns:
        A ``len(support)``-qubit circuit with re-indexed gates.
    """
    index = {qubit: i for i, qubit in enumerate(support)}
    compact = QuantumCircuit(len(support))
    for gate in gates:
        compact.append(
            Gate(
                name=gate.name,
                targets=tuple(index[q] for q in gate.targets),
                controls=tuple(index[q] for q in gate.controls),
                params=gate.params,
                cbits=gate.cbits,
            )
        )
    return compact


# ----------------------------------------------------------------------
# stabilizer tier
# ----------------------------------------------------------------------
def as_tableau_gate(gate: Gate) -> Optional[Gate]:
    """Translate a gate into the tableau vocabulary, if possible.

    Diagonal rotations at multiples of ``pi/2`` are Clifford but not
    native tableau gates; they translate exactly (up to global phase)
    to S/Z/S'.  Gates already in :data:`TABLEAU_GATES` pass through.

    Args:
        gate: the gate to translate.

    Returns:
        An equivalent tableau-vocabulary gate, or ``None`` when the
        gate is not Clifford (or not translatable).
    """
    name = gate.name
    if name in TABLEAU_GATES:
        return gate
    if name in ("rz", "p") and gate.params:
        quarter = _quarter_turns(gate.params[0])
        if quarter is None:
            return None
        replacement = (None, "s", "z", "sdg")[quarter]
        if replacement is None:
            return None  # caller treats a full turn as droppable
        return Gate(name=replacement, targets=gate.targets)
    if name == "cp" and gate.params:
        if _quarter_turns(gate.params[0]) == 2:
            return Gate(
                name="cz", targets=gate.targets, controls=gate.controls
            )
    return None


def _quarter_turns(angle: float) -> Optional[int]:
    """Return ``angle / (pi/2) mod 4`` when it is a near-exact integer."""
    turns = angle / (math.pi / 2)
    nearest = round(turns)
    if abs(turns - nearest) > 1e-9:
        return None
    return nearest % 4


def tableau_gates(gates: Sequence[Gate]) -> Optional[List[Gate]]:
    """Translate a gate list into the tableau vocabulary.

    Args:
        gates: the gates to translate (no-ops already removed).

    Returns:
        The translated list, or ``None`` when any gate falls outside
        the Clifford group the tableau engine executes.
    """
    out: List[Gate] = []
    for gate in gates:
        if (
            gate.name in ("rz", "p")
            and gate.params
            and _quarter_turns(gate.params[0]) == 0
        ):
            continue  # a full turn is the identity up to phase
        translated = as_tableau_gate(gate)
        if translated is None:
            return None
        out.append(translated)
    return out


def tableau_identity_failure(
    gates: Sequence[Gate], num_qubits: int
) -> Optional[str]:
    """Check that a Clifford gate sequence composes to a phase.

    Applies the gates to a fresh CHP tableau and checks that every
    destabilizer row is still ``+X_i`` and every stabilizer row still
    ``+Z_i`` — i.e. the sequence conjugates every Pauli generator to
    itself with a positive sign, which holds iff its unitary is a
    global phase times the identity.

    Args:
        gates: tableau-vocabulary gates of the composed circuit.
        num_qubits: register width.

    Returns:
        ``None`` when the sequence is a global phase, else a message
        naming the first generator that moved.
    """
    state = StabilizerState(num_qubits)
    try:
        for gate in gates:
            state.apply_gate(gate)
    except StabilizerError as exc:  # pragma: no cover - guarded upstream
        return str(exc)
    n = num_qubits
    identity = StabilizerState(n)
    # Fast path: compare the packed uint64 planes wholesale; unpacking
    # only happens on failure, to name the first generator that moved.
    if (
        np.array_equal(state.xs, identity.xs)
        and np.array_equal(state.zs, identity.zs)
        and not state.r[: 2 * n].any()
    ):
        return None
    moved_rows = np.nonzero(
        np.any(state.xs != identity.xs, axis=1)
        | np.any(state.zs != identity.zs, axis=1)
        | (state.r != 0)
    )[0]
    row = int(moved_rows[0]) if moved_rows.size else 2 * n
    if row < n:
        return f"composed circuit moves the Pauli generator X_{row}"
    return f"composed circuit moves the Pauli generator Z_{row - n}"


def clifford_equivalence_failure(
    before: Sequence[Gate], after: Sequence[Gate], num_qubits: int
) -> Optional[str]:
    """Decide Clifford equivalence up to global phase, exactly.

    Composes ``before ; after^-1`` and runs the tableau identity
    test.  Polynomial in width and gate count — sound and complete
    for Clifford circuits at any width.

    Args:
        before: tableau-vocabulary gates entering the pass.
        after: tableau-vocabulary gates the pass produced.
        num_qubits: register width of both circuits.

    Returns:
        ``None`` when equivalent up to global phase, else a message.
    """
    composed = list(before)
    for gate in reversed(after):
        composed.append(gate.dagger())
    return tableau_identity_failure(composed, num_qubits)


# ----------------------------------------------------------------------
# permutation tier
# ----------------------------------------------------------------------
def is_classical(circuit: QuantumCircuit) -> bool:
    """Whether every gate acts as a classical bit permutation.

    Args:
        circuit: the circuit to inspect.

    Returns:
        True when the circuit is X/CX/Toffoli/SWAP-only (ignoring
        no-ops), so integer bit-simulation reproduces it exactly.
    """
    return all(
        g.name in CLASSICAL_GATES or g.name in NOOP_GATES
        for g in circuit.gates
    )


def apply_classical_gates(circuit: QuantumCircuit, value: int) -> int:
    """Propagate a basis state through a classical (permutation) circuit.

    Args:
        circuit: an X/CX/Toffoli/SWAP-only circuit.
        value: input basis state as an integer (qubit 0 = LSB).

    Returns:
        The output basis state integer.

    Raises:
        ValueError: when a gate is not a classical permutation gate.
    """
    for gate in circuit.gates:
        name = gate.name
        if name in NOOP_GATES:
            continue
        if name not in CLASSICAL_GATES:
            raise ValueError(f"gate {name!r} is not a classical gate")
        if name == "swap" or name == "cswap":
            if gate.controls and not _bits_set(value, gate.controls):
                continue
            a, b = gate.targets
            bit_a = (value >> a) & 1
            bit_b = (value >> b) & 1
            if bit_a != bit_b:
                value ^= (1 << a) | (1 << b)
            continue
        # x / cx / ccx / mcx: flip the target when all controls are set
        if _bits_set(value, gate.controls):
            value ^= 1 << gate.targets[0]
    return value


def _bits_set(value: int, positions: Sequence[int]) -> bool:
    """Whether every bit of ``value`` at ``positions`` is one."""
    return all((value >> p) & 1 for p in positions)


# ----------------------------------------------------------------------
# randomized probe tier
# ----------------------------------------------------------------------
def random_product_state(
    num_qubits: int, rng: np.random.Generator
) -> Statevector:
    """Draw a random product state with random relative phases.

    Each qubit gets independent Bloch angles, so the state is (almost
    surely) not an eigenstate of any non-phase unitary — in
    particular diagonal-phase differences (a stray Z or S) shift the
    probe's fidelity away from one.

    Args:
        num_qubits: register width.
        rng: seeded generator (derandomized probes are reproducible).

    Returns:
        The probe :class:`~repro.simulator.statevector.Statevector`.
    """
    data = np.array([1.0], dtype=complex)
    for _ in range(num_qubits):
        theta = rng.uniform(0.0, math.pi)
        phi = rng.uniform(0.0, 2.0 * math.pi)
        qubit = np.array(
            [math.cos(theta / 2.0),
             complex(math.cos(phi), math.sin(phi)) * math.sin(theta / 2.0)],
            dtype=complex,
        )
        data = np.kron(qubit, data)
    return Statevector(num_qubits, data)


def overlap_magnitude(a: Statevector, b: Statevector) -> float:
    """Return ``|<a|b>|`` — 1.0 iff equal up to a global phase.

    Args:
        a: first normalized state.
        b: second normalized state.

    Returns:
        The overlap magnitude in ``[0, 1]``.
    """
    return float(abs(np.vdot(a.data, b.data)))


def widen_state(state: Statevector, num_qubits: int) -> Statevector:
    """Embed a state into a wider register with clean high ancillae.

    Args:
        state: the state on the low ``n`` qubits.
        num_qubits: total width (``>= state.num_qubits``).

    Returns:
        The state ``|psi>|0...0>`` on ``num_qubits`` qubits.
    """
    data = np.zeros(1 << num_qubits, dtype=complex)
    data[: 1 << state.num_qubits] = state.data
    return Statevector(num_qubits, data)


def permute_wires(state: Statevector, position_of: Sequence[int]) -> Statevector:
    """Move the content of wire ``p`` to wire ``position_of[p]``.

    Used by the routing probe tier: a routed circuit equals the lifted
    original followed by the wire permutation its SWAPs accumulated.

    Args:
        state: the state to permute.
        position_of: destination wire for each source wire.

    Returns:
        The permuted state.
    """
    n = state.num_qubits
    indices = np.arange(1 << n)
    permuted_index = np.zeros_like(indices)
    for p in range(n):
        permuted_index |= ((indices >> p) & 1) << position_of[p]
    data = np.zeros_like(state.data)
    data[permuted_index] = state.data
    return Statevector(n, data)

"""Command-line front door: ``python -m repro compile ...``.

Runs the paper's Eq. (5) story from the shell without the REPL:

.. code-block:: console

    $ python -m repro compile hwb=4 --target clifford_t --stats --report
    $ python -m repro compile hwb=4 --deadline 5 --retry 2
    $ python -m repro compile '(a and b) ^ (c and d)' --emit qasm2
    $ python -m repro compile perm:0,2,3,5,7,1,4,6 --target qsharp \
          --emit qsharp
    $ python -m repro compile oracle.qasm --target ibm_qe5 --emit qir
    $ python -m repro compile hwb=4 --target ibm_qe5 --simulate \
          --shots 4096 --seed 7
    $ python -m repro targets
    $ python -m repro formats
    $ python -m repro engines
    $ python -m repro cache stats --cache-dir ~/.repro-cache --json
    $ python -m repro cache gc --cache-dir ~/.repro-cache --max-bytes 1048576
    $ python -m repro cache clear --cache-dir ~/.repro-cache

Workload argument forms:

* a revgen generator spec — ``hwb=4``, ``adder=4,const=3``;
* a Boolean expression — ``'(a and b) ^ (c and d)'``;
* ``perm:0,2,3,...`` — a permutation image;
* ``tt:<nvars>:<hexbits>`` — an explicit truth table;
* a path to a circuit file importable through the :mod:`repro.emit`
  registry (``.qasm``), or a ``.json`` workload file.

``--emit`` and the ``formats`` subcommand enumerate the emitter
registry dynamically, so backends registered at runtime (or added in
future releases) show up without CLI changes; ``--engine`` and the
``engines`` subcommand do the same for the simulation-engine
registry (:mod:`repro.engines`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

from . import emit as emit_registry
from . import engines as engine_registry
from .compiler import (
    NAMED_FLOWS,
    compile as compile_workload,
    get_target,
    list_targets,
)
from .pipeline.state import PipelineError


def _load_workload(spec: str) -> Any:
    """Translate the CLI workload argument into a workload object."""
    if spec == "-":
        # empty seed: the explicit --flow generates its own input
        return None
    if os.path.exists(spec):
        if spec.endswith(".json"):
            with open(spec) as stream:
                return json.load(stream)
        # circuit files resolve by extension through the emit registry
        return Path(spec)
    if spec.startswith("perm:"):
        from .boolean.permutation import BitPermutation

        image = [int(v) for v in spec[len("perm:"):].split(",")]
        return BitPermutation(image)
    if spec.startswith("tt:"):
        from .boolean.truth_table import TruthTable

        try:
            _, num_vars, hexbits = spec.split(":")
        except ValueError:
            raise SystemExit(
                "error: truth-table workload must be tt:<nvars>:<hexbits>"
            ) from None
        return TruthTable.from_hex(int(num_vars), hexbits)
    return spec


def _cmd_compile(args: argparse.Namespace) -> int:
    """Run the ``compile`` subcommand."""
    try:
        if args.emit:
            # fail on format typos before paying for the compilation
            emit_registry.get(args.emit)
        workload = _load_workload(args.workload)
        result = compile_workload(
            workload,
            target=args.target,
            flow=args.flow,
            verify=args.verify,
            cache=args.cache_dir if args.cache_dir else "shared",
            deadline=args.deadline,
            retry=args.retry,
            # --retry is only meaningful if failing passes re-run
            on_error="retry" if args.retry is not None else None,
            engine=args.engine,
        )
    except (PipelineError, TypeError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = sys.stdout
    try:
        if args.emit:
            info = sys.stderr
            print(result.emit(args.emit), file=out, end="")
        else:
            info = out
            print(result.summary(), file=info)
        if args.verify not in (None, "off"):
            print(result.verification_report(), file=info)
        if args.report:
            print(result.report(), file=info)
        if args.stats:
            stats = result.statistics
            if stats is None and result.circuit is not None:
                from .core.statistics import circuit_statistics

                stats = circuit_statistics(result.circuit)
            if stats is not None:
                print(stats, file=info)
            else:
                metrics = ", ".join(
                    f"{k}={v}" for k, v in sorted(result.metrics().items())
                )
                print(metrics or "(no metrics)", file=info)
        if (
            args.simulate
            or args.shots is not None
            or args.noise is not None
            or args.seed is not None
        ):
            sim = result.simulate(
                # --engine is recorded on the result by compile()
                shots=args.shots if args.shots is not None else 1024,
                noise=args.noise,
                seed=args.seed,
            )
            print(_counts_table(sim), file=info)
    except (PipelineError, engine_registry.EngineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _counts_table(result) -> str:
    """Format a simulation result as an aligned counts table.

    One row per observed outcome, most frequent first: the bitstring,
    the shot count, and the frequency — plus the exact probability
    column when the backend computed one (density-matrix runs).
    """
    counts = result.counts_by_bitstring()
    if not counts:
        return "(no measurement results)"
    shots = sum(counts.values()) or 1
    exact = getattr(result, "exact_probabilities", None)
    width = max(len(bits) for bits in counts)
    lines = []
    for bits, count in sorted(
        counts.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        row = f"{bits:>{width}}  {count:>6}  {count / shots:.4f}"
        if exact is not None:
            row += f"  exact={result.probability(int(bits, 2)):.4f}"
        lines.append(row)
    return "\n".join(lines)


def _quarantined_entries(path: str) -> int:
    """Count the entry files sitting in a cache's ``quarantine/``."""
    from .pipeline.cache import QUARANTINE_DIR

    try:
        return len(os.listdir(os.path.join(path, QUARANTINE_DIR)))
    except OSError:
        return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Run the ``cache`` subcommand (stats / gc / clear)."""
    from .pipeline.cache import PassCache

    path = args.cache_dir
    if not os.path.isdir(path):
        print(
            f"error: cache directory {path!r} does not exist",
            file=sys.stderr,
        )
        return 2
    cache = PassCache(path=path)
    if args.action == "stats":
        stats = cache.stats()
        payload = {
            "path": path,
            "entries": stats["disk_entries"],
            "bytes": stats["disk_bytes"],
            # per-instance I/O health counters (zero for this fresh
            # maintenance instance unless the scan itself failed) and
            # the durable quarantine count read from the directory
            "io_errors": stats["io_errors"],
            "memory_io_errors": stats["memory_io_errors"],
            "disk_io_errors": stats["disk_io_errors"],
            "retries": stats["retries"],
            "degraded": stats["degraded"],
            "quarantined": _quarantined_entries(path),
        }
    elif args.action == "gc":
        swept = cache.gc(
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
            validate=True,
        )
        payload = {"path": path, **swept}
    else:  # clear
        before = cache.stats()
        cache.clear(disk=True)
        payload = {
            "path": path,
            "cleared": before["disk_entries"],
            "bytes_freed": before["disk_bytes"],
        }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        width = max(len(key) for key in payload)
        for key in sorted(payload):
            print(f"{key:<{width}}  {payload[key]}")
    return 0


def _cmd_targets(_args: argparse.Namespace) -> int:
    """Run the ``targets`` subcommand (list registered presets)."""
    names = list_targets()
    width = max(len(name) for name in names)
    for name in names:
        target = get_target(name)
        extras = [f"level={target.optimization_level}"]
        if target.coupling is not None:
            extras.append("routed")
        if target.emitter:
            extras.append(f"emit={target.emitter}")
        print(
            f"{name:<{width}}  {target.description}"
            f"  [{', '.join(extras)}]"
        )
    return 0


def _cmd_formats(args: argparse.Namespace) -> int:
    """Run the ``formats`` subcommand (list registered emitters)."""
    names = emit_registry.formats()
    if args.names:
        for name in names:
            print(name)
        return 0
    width = max(len(name) for name in names)
    for name in names:
        emitter = emit_registry.get(name)
        extras = [emitter.file_extension]
        aliases = tuple(getattr(emitter, "aliases", ()))
        if aliases:
            extras.append(f"aka {'/'.join(aliases)}")
        if emit_registry.can_parse(emitter):
            extras.append("round-trip")
        print(
            f"{name:<{width}}  {emitter.description}"
            f"  [{', '.join(extras)}]"
        )
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    """Run the ``engines`` subcommand (list simulation backends)."""
    names = engine_registry.engines()
    if args.names:
        for name in names:
            print(name)
        return 0
    width = max(len(name) for name in names)
    for name in names:
        engine = engine_registry.get(name)
        extras = [engine.capabilities.describe()]
        aliases = tuple(getattr(engine, "aliases", ()))
        if aliases:
            extras.append(f"aka {'/'.join(aliases)}")
        print(
            f"{name:<{width}}  {engine.description}"
            f"  [{', '.join(extras)}]"
        )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """Run the ``backends`` subcommand (list array backends)."""
    from repro.simulator import backends as array_backends

    names = array_backends.backends()
    if args.names:
        for name in names:
            print(name)
        return 0
    rows = []
    for name in names:
        backend = array_backends.get(name)
        rows.append((name, backend.description,
                     tuple(getattr(backend, "aliases", ())), None))
    for cls in array_backends._BUILTIN_CLASSES:
        if cls.name not in names:
            rows.append((cls.name, cls.description, cls.aliases,
                         "unavailable: pip install numba"))
    width = max(len(name) for name, *_ in rows)
    for name, description, aliases, note in rows:
        extras = []
        if aliases:
            extras.append(f"aka {'/'.join(aliases)}")
        if note:
            extras.append(note)
        suffix = f"  [{', '.join(extras)}]" if extras else ""
        print(f"{name:<{width}}  {description}{suffix}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="repro compiler facade (Soeken/Haener/Roetteler, "
        "DATE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser(
        "compile",
        help="compile a workload for a target (the one front door)",
    )
    cmd.add_argument(
        "workload",
        help="generator spec (hwb=4), Boolean expression, "
        "perm:..., tt:<n>:<hex>, a .qasm/.json file, or '-' for an "
        "empty seed when --flow generates its own input",
    )
    cmd.add_argument(
        "--target",
        default=None,
        help=f"target preset ({', '.join(list_targets())}); "
        "default clifford_t",
    )
    cmd.add_argument(
        "--flow",
        default=None,
        choices=sorted(NAMED_FLOWS),
        help="explicit flow preset overriding target resolution",
    )
    cmd.add_argument(
        "--verify",
        nargs="?",
        const="auto",
        default=None,
        choices=("auto", "strict", "off"),
        help="fail-fast tiered verification of every pass: 'auto' "
        "(also the bare-flag default) picks the cheapest sound tier "
        "per pass, 'strict' additionally fails on skipped checks, "
        "'off' disables; omitted, the target's verify field applies",
    )
    cmd.add_argument(
        "--stats",
        action="store_true",
        help="print the final circuit statistics (ps -c)",
    )
    cmd.add_argument(
        "--report",
        action="store_true",
        help="print the per-pass timing/delta table",
    )
    cmd.add_argument(
        "--emit",
        default=None,
        metavar="FORMAT",
        help="print the compiled circuit in this format on stdout "
        f"({', '.join(emit_registry.formats())}, or any format "
        "registered with repro.emit)",
    )
    cmd.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="simulation backend for --simulate "
        f"({', '.join(engine_registry.engines())}, or any engine "
        "registered with repro.engines); default follows the target",
    )
    cmd.add_argument(
        "--simulate",
        action="store_true",
        help="run the compiled circuit on the selected engine and "
        "print a counts table (implied by --shots/--noise/--seed)",
    )
    cmd.add_argument(
        "--shots",
        type=int,
        default=None,
        metavar="N",
        help="measurement repetitions for --simulate (default 1024)",
    )
    cmd.add_argument(
        "--noise",
        default=None,
        metavar="MODEL",
        help="noise model for --simulate: a preset (qe5, none) or a "
        "rate list like p1=0.001,p2=0.03; default follows the target",
    )
    cmd.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="RNG seed for reproducible --simulate sampling",
    )
    cmd.add_argument(
        "--cache-dir",
        default=None,
        help="persistent pass-cache directory (reused across runs)",
    )
    cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="compute budget for the whole compilation; an expired "
        "budget fails with a typed deadline error naming the flow "
        "position",
    )
    cmd.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="ATTEMPTS",
        help="re-run transiently failing passes up to this many "
        "attempts (exponential backoff)",
    )
    cmd.set_defaults(func=_cmd_compile)

    lst = sub.add_parser("targets", help="list registered target presets")
    lst.set_defaults(func=_cmd_targets)

    fmts = sub.add_parser(
        "formats",
        help="list the emission formats registered with repro.emit",
    )
    fmts.add_argument(
        "--names",
        action="store_true",
        help="print bare format names, one per line (for scripting)",
    )
    fmts.set_defaults(func=_cmd_formats)

    engs = sub.add_parser(
        "engines",
        help="list the simulation engines registered with repro.engines",
    )
    engs.add_argument(
        "--names",
        action="store_true",
        help="print bare engine names, one per line (for scripting)",
    )
    engs.set_defaults(func=_cmd_engines)

    bkds = sub.add_parser(
        "backends",
        help="list array backends (availability included)",
    )
    bkds.add_argument(
        "--names",
        action="store_true",
        help="print bare names of usable backends, one per line "
        "(for scripting)",
    )
    bkds.set_defaults(func=_cmd_backends)

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain a persistent pass-cache directory",
    )
    cache.add_argument(
        "action",
        choices=("stats", "gc", "clear"),
        help="stats: entry/byte totals and I/O health counters; gc: "
        "LRU sweep down to the given budgets (also moves corrupt "
        "entries into quarantine/ and drops stale spill temp files); "
        "clear: delete every cache entry (quarantine/ is kept)",
    )
    cache.add_argument(
        "--cache-dir",
        required=True,
        help="persistent pass-cache directory to operate on",
    )
    cache.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="gc: evict least-recently-used entries beyond this count",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: evict least-recently-used entries beyond this size",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help="print the result as one JSON object",
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

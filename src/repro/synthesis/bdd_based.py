"""BDD-based hierarchical reversible synthesis.

The Wille–Drechsler approach [45] adapted to ancilla lines: build the
(shared) BDD of the target function(s), allocate one ancilla line per
BDD node, and realize every node's Shannon expansion

    v = (x_var AND high) XOR (NOT x_var AND low)

with at most two Toffoli gates writing onto the node's clean ancilla.
Output values are copied to the output lines with CNOTs and all
intermediate nodes are uncomputed in reverse order (Bennett
compute–copy–uncompute), so ancillae are returned to |0>.

The ancilla count equals the number of BDD nodes — exactly the
"k is a result of the synthesis algorithm" issue Sec. V highlights as
an open challenge; :func:`bdd_synthesis` therefore reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..boolean.bdd import ONE, ZERO, Bdd
from ..boolean.truth_table import MultiTruthTable, TruthTable
from .reversible import MctGate, ReversibleCircuit


@dataclass
class BddSynthesisResult:
    """Circuit plus line bookkeeping of the BDD-based flow."""

    circuit: ReversibleCircuit
    num_inputs: int
    num_outputs: int
    num_ancillae: int
    output_lines: List[int]
    bdd_nodes: int

    @property
    def total_lines(self) -> int:
        return self.circuit.num_lines


def bdd_synthesis(
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
) -> BddSynthesisResult:
    """Hierarchical synthesis over the shared BDD of ``function``.

    Line layout: inputs ``0..n-1``, outputs ``n..n+m-1`` (clean),
    ancillae above.  Realizes ``|x>|0>|0> -> |x>|f(x)>|0>``.
    """
    tables = _as_tables(function)
    n = tables[0].num_vars
    m = len(tables)
    bdd = Bdd(n)
    roots = [bdd.from_truth_table(table) for table in tables]
    nodes = bdd.reachable_nodes(roots)  # children before parents

    node_line: Dict[int, int] = {}
    next_line = n + m
    for node in nodes:
        node_line[node] = next_line
        next_line += 1

    circuit = ReversibleCircuit(next_line, name="bdd")

    compute_gates: List[MctGate] = []
    for node in nodes:
        compute_gates.extend(_node_gates(bdd, node, node_line))
    circuit.extend(compute_gates)

    # copy root values onto output lines
    for j, root in enumerate(roots):
        out = n + j
        if root == ONE:
            circuit.add_gate(out)
        elif root == ZERO:
            continue
        elif bdd.is_terminal(root):
            continue
        else:
            circuit.add_gate(out, (node_line[root],))

    # uncompute ancillae (reverse order, gates self-inverse)
    circuit.extend(reversed(compute_gates))

    return BddSynthesisResult(
        circuit=circuit,
        num_inputs=n,
        num_outputs=m,
        num_ancillae=len(nodes),
        output_lines=list(range(n, n + m)),
        bdd_nodes=len(nodes),
    )


def _node_gates(
    bdd: Bdd, node: int, node_line: Dict[int, int]
) -> List[MctGate]:
    """Gates computing node's function onto its clean ancilla line.

    v = (x AND high) XOR (~x AND low); terminal children specialize to
    plain CNOTs/NOTs on the corresponding branch.
    """
    data = bdd.node(node)
    var_line = data.var
    line = node_line[node]
    gates: List[MctGate] = []

    def branch(child: int, positive: bool) -> None:
        polarity = (positive,)
        if child == ZERO:
            return
        if child == ONE:
            gates.append(MctGate(line, (var_line,), polarity))
            return
        gates.append(
            MctGate(
                line,
                (var_line, node_line[child]),
                polarity + (True,),
            )
        )

    branch(data.high, True)
    branch(data.low, False)
    return gates


def verify_bdd_synthesis(
    result: BddSynthesisResult,
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
) -> bool:
    """Exhaustively check |x>|0>|0> -> |x>|f(x)>|0>."""
    tables = _as_tables(function)
    n = result.num_inputs
    for x in range(1 << n):
        output = result.circuit.apply(x)
        if output & ((1 << n) - 1) != x:
            return False
        for j, table in enumerate(tables):
            if (output >> (n + j)) & 1 != table(x):
                return False
        if output >> (n + result.num_outputs):
            return False  # dirty ancilla
    return True


def _as_tables(function) -> List[TruthTable]:
    if isinstance(function, TruthTable):
        return [function]
    if isinstance(function, MultiTruthTable):
        return list(function.outputs)
    return list(function)

"""Reversible circuits: multiple-controlled Toffoli (MCT) networks.

The intermediate representation between Boolean synthesis and quantum
mapping (Sec. V): reversible gates are "Boolean abstractions of
classical reversible operations".  An :class:`MctGate` is an X on the
target line conditioned on a set of positive/negative control lines; a
:class:`ReversibleCircuit` is a cascade of such gates.

Conversion to quantum circuits wraps negative controls in X
conjugation and leaves multi-controlled gates to the Clifford+T mapping
pass (:mod:`repro.mapping`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..boolean.permutation import BitPermutation
from ..core.circuit import QuantumCircuit


@dataclass(frozen=True)
class MctGate:
    """A multiple-controlled Toffoli.

    Attributes:
        target: line whose value is flipped.
        controls: control line indices.
        polarity: bit i set = control ``controls[i]`` is positive
            (fires on 1); clear = negative (fires on 0).  Stored as a
            tuple of booleans aligned with ``controls``.
    """

    target: int
    controls: Tuple[int, ...] = ()
    polarity: Tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if len(self.polarity) not in (0, len(self.controls)):
            raise ValueError("polarity length must match controls")
        if not self.polarity and self.controls:
            object.__setattr__(
                self, "polarity", tuple(True for _ in self.controls)
            )
        if self.target in self.controls:
            raise ValueError("target cannot also be a control")
        if len(set(self.controls)) != len(self.controls):
            raise ValueError("duplicate control line")

    @classmethod
    def from_masks(cls, target: int, control_mask: int, polarity_mask: int) -> "MctGate":
        """Build from bitmasks (polarity bit set = positive control)."""
        controls = []
        polarity = []
        bit = 0
        while control_mask >> bit:
            if (control_mask >> bit) & 1:
                controls.append(bit)
                polarity.append(bool((polarity_mask >> bit) & 1))
            bit += 1
        return cls(target, tuple(controls), tuple(polarity))

    @property
    def num_controls(self) -> int:
        return len(self.controls)

    def control_mask(self) -> int:
        mask = 0
        for line in self.controls:
            mask |= 1 << line
        return mask

    def polarity_mask(self) -> int:
        mask = 0
        for line, positive in zip(self.controls, self.polarity):
            if positive:
                mask |= 1 << line
        return mask

    def fires(self, value: int) -> bool:
        """True if all controls are satisfied by ``value``."""
        return (value & self.control_mask()) == self.polarity_mask()

    def apply(self, value: int) -> int:
        if self.fires(value):
            return value ^ (1 << self.target)
        return value

    def lines(self) -> Tuple[int, ...]:
        return self.controls + (self.target,)

    def remap(self, mapping: Dict[int, int]) -> "MctGate":
        return MctGate(
            mapping[self.target],
            tuple(mapping[c] for c in self.controls),
            self.polarity,
        )

    def __str__(self) -> str:
        if not self.controls:
            return f"X({self.target})"
        ctl = ", ".join(
            f"{'+' if pos else '-'}{line}"
            for line, pos in zip(self.controls, self.polarity)
        )
        return f"MCT([{ctl}] -> {self.target})"


class ReversibleCircuit:
    """Cascade of MCT gates over ``num_lines`` lines."""

    def __init__(self, num_lines: int, name: str = "reversible"):
        if num_lines < 0:
            raise ValueError("num_lines must be non-negative")
        self.num_lines = num_lines
        self.name = name
        self.gates: List[MctGate] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[MctGate]:
        return iter(self.gates)

    def __getitem__(self, index):
        return self.gates[index]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ReversibleCircuit)
            and self.num_lines == other.num_lines
            and self.gates == other.gates
        )

    def copy(self) -> "ReversibleCircuit":
        out = ReversibleCircuit(self.num_lines, self.name)
        out.gates = list(self.gates)
        return out

    def append(self, gate: MctGate) -> "ReversibleCircuit":
        for line in gate.lines():
            if not 0 <= line < self.num_lines:
                raise ValueError(f"line {line} out of range")
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[MctGate]) -> "ReversibleCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def add_gate(
        self,
        target: int,
        controls: Sequence[int] = (),
        polarity: Sequence[bool] = (),
    ) -> "ReversibleCircuit":
        return self.append(MctGate(target, tuple(controls), tuple(polarity)))

    def x(self, target: int) -> "ReversibleCircuit":
        return self.add_gate(target)

    def cnot(self, control: int, target: int) -> "ReversibleCircuit":
        return self.add_gate(target, (control,))

    def toffoli(self, c1: int, c2: int, target: int) -> "ReversibleCircuit":
        return self.add_gate(target, (c1, c2))

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def apply(self, value: int) -> int:
        for gate in self.gates:
            value = gate.apply(value)
        return value

    def permutation(self) -> BitPermutation:
        """The bijection the circuit realizes (input -> output)."""
        return BitPermutation(
            [self.apply(x) for x in range(1 << self.num_lines)]
        )

    def dagger(self) -> "ReversibleCircuit":
        """Inverse circuit: MCT gates are self-inverse, order reverses."""
        out = ReversibleCircuit(self.num_lines, self.name + "_dg")
        out.gates = list(reversed(self.gates))
        return out

    inverse = dagger

    def compose(self, other: "ReversibleCircuit") -> "ReversibleCircuit":
        if other.num_lines > self.num_lines:
            raise ValueError("composed circuit is wider")
        self.gates.extend(other.gates)
        return self

    def remap(
        self, mapping: Dict[int, int], num_lines: Optional[int] = None
    ) -> "ReversibleCircuit":
        out = ReversibleCircuit(
            num_lines if num_lines is not None else self.num_lines, self.name
        )
        for gate in self.gates:
            out.append(gate.remap(mapping))
        return out

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def gate_count(self) -> int:
        return len(self.gates)

    def control_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for gate in self.gates:
            hist[gate.num_controls] = hist.get(gate.num_controls, 0) + 1
        return hist

    def quantum_cost(self) -> int:
        """Classical 'quantum cost' heuristic (Maslov-style table):
        NOT/CNOT cost 1, Toffoli 5, k-control MCT ~ 2^(k+1) - 3 for
        positive controls (standard literature figures)."""
        cost = 0
        for gate in self.gates:
            k = gate.num_controls
            if k <= 1:
                cost += 1
            elif k == 2:
                cost += 5
            else:
                cost += (1 << (k + 1)) - 3
        return cost

    def t_count_estimate(self) -> int:
        """T gates after naive Clifford+T mapping: 7 per Toffoli,
        ~8(k-2)+7 for a k-control MCT decomposed into Toffolis."""
        total = 0
        for gate in self.gates:
            k = gate.num_controls
            if k <= 1:
                continue
            if k == 2:
                total += 7
            else:
                total += 7 * (2 * (k - 2) + 1)
        return total

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_quantum_circuit(self) -> QuantumCircuit:
        """Lower to quantum gates (negative controls via X conjugation).

        Multi-controlled gates are emitted as ``mcx``; run the
        Clifford+T mapping pass to remove them.
        """
        circuit = QuantumCircuit(self.num_lines, name=self.name)
        for gate in self.gates:
            negatives = [
                line
                for line, positive in zip(gate.controls, gate.polarity)
                if not positive
            ]
            for line in negatives:
                circuit.x(line)
            circuit.mcx(list(gate.controls), gate.target)
            for line in negatives:
                circuit.x(line)
        return circuit

    def __str__(self) -> str:
        lines = [
            f"ReversibleCircuit({self.num_lines} lines, {len(self.gates)} gates)"
        ]
        lines.extend("  " + str(g) for g in self.gates)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ReversibleCircuit {self.name!r}: {self.num_lines} lines, "
            f"{len(self.gates)} gates>"
        )

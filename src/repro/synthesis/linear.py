"""Linear reversible (CNOT-only) circuit synthesis.

CNOT circuits compute invertible linear maps over GF(2) — the linear
layer inside every phase-polynomial region that T-par manipulates
[69].  This module provides:

* :class:`Gf2Matrix` — dense boolean matrices with rank/inverse/solve;
* :func:`gaussian_synthesis` — textbook Gaussian elimination
  (O(n^2) CNOTs);
* :func:`pmh_synthesis` — the Patel–Markov–Hayes partitioned
  elimination, asymptotically O(n^2 / log n) CNOTs and in practice
  smaller circuits for wider registers;
* :func:`cnot_circuit_to_matrix` — the inverse direction, used for
  verification and by the phase-region machinery.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.circuit import QuantumCircuit


class Gf2Matrix:
    """Square boolean matrix; row ``i`` stored as an int bitmask."""

    def __init__(self, rows: Sequence[int], size: int):
        self.size = size
        mask = (1 << size) - 1
        self.rows = [row & mask for row in rows]
        if len(self.rows) != size:
            raise ValueError("need exactly `size` rows")

    # constructors -------------------------------------------------------
    @classmethod
    def identity(cls, size: int) -> "Gf2Matrix":
        return cls([1 << i for i in range(size)], size)

    @classmethod
    def from_lists(cls, data: Sequence[Sequence[int]]) -> "Gf2Matrix":
        size = len(data)
        rows = []
        for row in data:
            value = 0
            for j, bit in enumerate(row):
                if bit:
                    value |= 1 << j
            rows.append(value)
        return cls(rows, size)

    @classmethod
    def random_invertible(
        cls, size: int, seed: Optional[int] = None
    ) -> "Gf2Matrix":
        rng = random.Random(seed)
        while True:
            matrix = cls([rng.getrandbits(size) for _ in range(size)], size)
            if matrix.rank() == size:
                return matrix

    # queries ------------------------------------------------------------
    def entry(self, i: int, j: int) -> int:
        return (self.rows[i] >> j) & 1

    def copy(self) -> "Gf2Matrix":
        return Gf2Matrix(list(self.rows), self.size)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Gf2Matrix)
            and self.size == other.size
            and self.rows == other.rows
        )

    def is_identity(self) -> bool:
        return self.rows == [1 << i for i in range(self.size)]

    def rank(self) -> int:
        rows = list(self.rows)
        rank = 0
        for col in range(self.size):
            pivot = next(
                (
                    i
                    for i in range(rank, self.size)
                    if (rows[i] >> col) & 1
                ),
                None,
            )
            if pivot is None:
                continue
            rows[rank], rows[pivot] = rows[pivot], rows[rank]
            for i in range(self.size):
                if i != rank and (rows[i] >> col) & 1:
                    rows[i] ^= rows[rank]
            rank += 1
        return rank

    def apply(self, x: int) -> int:
        """y = M x with x, y as bit vectors (bit j = component j)."""
        y = 0
        for i, row in enumerate(self.rows):
            if bin(row & x).count("1") & 1:
                y |= 1 << i
        return y

    def multiply(self, other: "Gf2Matrix") -> "Gf2Matrix":
        """self @ other."""
        if self.size != other.size:
            raise ValueError("size mismatch")
        out_rows = []
        for i in range(self.size):
            acc = 0
            for j in range(self.size):
                if self.entry(i, j):
                    acc ^= other.rows[j]
            out_rows.append(acc)
        return Gf2Matrix(out_rows, self.size)

    def inverse(self) -> "Gf2Matrix":
        size = self.size
        rows = list(self.rows)
        aug = [1 << i for i in range(size)]
        rank = 0
        for col in range(size):
            pivot = next(
                (i for i in range(rank, size) if (rows[i] >> col) & 1), None
            )
            if pivot is None:
                raise ValueError("matrix is singular")
            rows[rank], rows[pivot] = rows[pivot], rows[rank]
            aug[rank], aug[pivot] = aug[pivot], aug[rank]
            for i in range(size):
                if i != rank and (rows[i] >> col) & 1:
                    rows[i] ^= rows[rank]
                    aug[i] ^= aug[rank]
            rank += 1
        return Gf2Matrix(aug, size)


def _row_add_as_cnot(circuit: QuantumCircuit, source: int, target: int) -> None:
    """Row_target ^= Row_source corresponds to CNOT(source, target) at
    the *input* side when synthesizing by inverse elimination."""
    circuit.cx(source, target)


def gaussian_synthesis(matrix: Gf2Matrix) -> QuantumCircuit:
    """CNOT circuit for an invertible matrix by Gaussian elimination.

    Eliminates the matrix to the identity with row operations; each
    operation ``row_t ^= row_s`` is emitted as ``CNOT(s, t)``.  The
    collected operations, applied in reverse, rebuild the matrix — so
    the emitted order realizes it directly (CNOT is self-inverse and
    ``(AB)^-1 = B^-1 A^-1``).
    """
    work = matrix.copy()
    size = matrix.size
    operations: List[Tuple[int, int]] = []

    def add_row(source: int, target: int) -> None:
        work.rows[target] ^= work.rows[source]
        operations.append((source, target))

    for col in range(size):
        if not work.entry(col, col):
            pivot = next(
                (
                    i
                    for i in range(col + 1, size)
                    if work.entry(i, col)
                ),
                None,
            )
            if pivot is None:
                raise ValueError("matrix is singular")
            add_row(pivot, col)
        for i in range(size):
            if i != col and work.entry(i, col):
                add_row(col, i)
    assert work.is_identity()

    circuit = QuantumCircuit(size, name="linear")
    for source, target in reversed(operations):
        circuit.cx(source, target)
    return circuit


def pmh_synthesis(matrix: Gf2Matrix, section_size: Optional[int] = None) -> QuantumCircuit:
    """Patel–Markov–Hayes synthesis (partitioned Gaussian elimination).

    Columns are processed in sections of ``m ~ log2(n)`` bits;
    duplicate sub-rows within a section are eliminated first, which is
    what saves the log factor.
    """
    size = matrix.size
    if section_size is None:
        # the PMH-optimal section width is ~log2(n)
        section_size = max(1, min(size, size.bit_length() - 1 or 1))
    work = matrix.copy()
    operations: List[Tuple[int, int]] = []

    def add_row(source: int, target: int) -> None:
        work.rows[target] ^= work.rows[source]
        operations.append((source, target))

    def lower_triangular_pass() -> None:
        for section_start in range(0, size, section_size):
            section_end = min(section_start + section_size, size)
            section_mask = 0
            for col in range(section_start, section_end):
                section_mask |= 1 << col
            # step A: merge rows with identical section patterns
            seen = {}
            for row in range(section_start, size):
                pattern = work.rows[row] & section_mask
                if not pattern:
                    continue
                if pattern in seen:
                    add_row(seen[pattern], row)
                else:
                    seen[pattern] = row
            # step B: ordinary elimination inside the section
            for col in range(section_start, section_end):
                if not work.entry(col, col):
                    pivot = next(
                        (
                            i
                            for i in range(col + 1, size)
                            if work.entry(i, col)
                        ),
                        None,
                    )
                    if pivot is None:
                        raise ValueError("matrix is singular")
                    add_row(pivot, col)
                for row in range(col + 1, size):
                    if work.entry(row, col):
                        add_row(col, row)

    def transpose_in_place() -> None:
        transposed = [0] * size
        for i in range(size):
            for j in range(size):
                if work.entry(i, j):
                    transposed[j] |= 1 << i
        work.rows = transposed

    # eliminate to lower-triangular, transpose, eliminate again
    lower_triangular_pass()
    transpose_in_place()
    split = len(operations)
    lower_triangular_pass()
    assert work.is_identity()

    circuit = QuantumCircuit(size, name="linear-pmh")
    # operations after the transpose act on the transposed matrix:
    # row_t ^= row_s there is column ops here = CNOT(t, s), and their
    # order is NOT reversed (see Patel-Markov-Hayes, Sec. III)
    for source, target in operations[split:]:
        circuit.cx(target, source)
    for source, target in reversed(operations[:split]):
        circuit.cx(source, target)
    return circuit


def cnot_circuit_to_matrix(circuit: QuantumCircuit) -> Gf2Matrix:
    """The GF(2) matrix computed by a CNOT-only circuit.

    Convention: state bits transform as ``x_target ^= x_control``;
    the returned matrix M satisfies ``output = M . input``.
    """
    matrix = Gf2Matrix.identity(circuit.num_qubits)
    for gate in circuit.gates:
        if gate.name == "barrier":
            continue
        if gate.name == "swap":
            a, b = gate.targets
            matrix.rows[a], matrix.rows[b] = matrix.rows[b], matrix.rows[a]
            continue
        if gate.name != "cx":
            raise ValueError(f"not a CNOT circuit (found {gate.name!r})")
        control, target = gate.controls[0], gate.targets[0]
        matrix.rows[target] ^= matrix.rows[control]
    return matrix

"""Decomposition-based synthesis (DBS) — the ``dbs`` command.

Young-subgroup decomposition after De Vos and Van Rentergem [47], the
algorithm the paper selects for the permutation oracle of the
Maiorana–McFarland example (``PermutationOracle(pi, synth=revkit.dbs)``,
Fig. 7).  For each line ``i`` the permutation ``P`` is split as

    P = L o C o R

where ``L`` and ``R`` are single-target gates on line ``i`` and ``C``
preserves line ``i``.  Iterating over all lines leaves the identity,
yielding at most ``2n`` single-target gates, each lowered to MCTs via
ESOP covers.

The split is found by propagating XOR constraints over the pairs
``(x, x ^ e_i)``: choosing whether ``R`` swaps an input pair and ``L``
an output pair is a 2-coloring of the cycle structure, which always
exists for a bijection.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from .reversible import ReversibleCircuit
from .single_target import SingleTargetGate, single_target_gates_to_circuit


def _split_on_line(
    perm: List[int], num_bits: int, line: int
) -> Tuple[TruthTable, List[int], TruthTable]:
    """Decompose perm = L o C o R on ``line``.

    Returns (r_function, middle_perm, l_function) where the functions
    are over the *other* lines in ascending order.
    """
    bit = 1 << line
    rest_bits = num_bits - 1

    def rest_index(value: int) -> int:
        low = value & (bit - 1)
        high = (value >> (line + 1)) << line
        return low | high

    def with_bit(rest: int, b: int) -> int:
        low = rest & (bit - 1)
        high = (rest >> line) << (line + 1)
        return low | high | (b << line)

    # XOR constraint propagation over r(u) / l(v)
    inverse = [0] * len(perm)
    for x, y in enumerate(perm):
        inverse[y] = x
    r_val: Dict[int, int] = {}
    l_val: Dict[int, int] = {}
    for u_start in range(1 << rest_bits):
        if u_start in r_val:
            continue
        r_val[u_start] = 0
        queue = deque([("r", u_start)])
        while queue:
            kind, node = queue.popleft()
            if kind == "r":
                u = node
                # pair (u,0) and (u,1) map to outputs with rest v0/v1
                y0 = perm[with_bit(u, 0)]
                y1 = perm[with_bit(u, 1)]
                for b, y in ((0, y0), (1, y1)):
                    v = rest_index(y)
                    c = (y >> line) & 1
                    # requirement: c ^ l(v) = b ^ r(u)
                    needed = c ^ b ^ r_val[u]
                    if v in l_val:
                        if l_val[v] != needed:
                            raise AssertionError(
                                "inconsistent 2-coloring (not a bijection?)"
                            )
                    else:
                        l_val[v] = needed
                        queue.append(("l", v))
            else:
                v = node
                # outputs (v,0) and (v,1) come from inputs with rest u
                for c in (0, 1):
                    x = inverse[with_bit(v, c)]
                    u = rest_index(x)
                    b = (x >> line) & 1
                    needed = c ^ b ^ l_val[v]
                    if u in r_val:
                        if r_val[u] != needed:
                            raise AssertionError("inconsistent 2-coloring")
                    else:
                        r_val[u] = needed
                        queue.append(("r", u))

    r_table = TruthTable(rest_bits)
    for u, value in r_val.items():
        if value:
            r_table.bits |= 1 << u
    l_table = TruthTable(rest_bits)
    for v, value in l_val.items():
        if value:
            l_table.bits |= 1 << v

    # middle permutation C = L o P o R (L, R self-inverse)
    def apply_r(x: int) -> int:
        return x ^ (bit if r_table(rest_index(x)) else 0)

    def apply_l(y: int) -> int:
        return y ^ (bit if l_table(rest_index(y)) else 0)

    middle = [0] * len(perm)
    for x in range(len(perm)):
        middle[x] = apply_l(perm[apply_r(x)])
    return r_table, middle, l_table


def young_subgroup_decomposition(
    permutation: BitPermutation,
) -> Tuple[List[SingleTargetGate], List[SingleTargetGate]]:
    """Full decomposition into single-target gates.

    Returns (left_gates, right_gates) such that, in application order,
    the circuit is ``right_gates`` (line 0 first) followed by
    ``left_gates`` reversed (line n-1 first).
    """
    n = permutation.num_bits
    perm = list(permutation.image)
    rights: List[SingleTargetGate] = []
    lefts: List[SingleTargetGate] = []
    for line in range(n):
        other_lines = tuple(i for i in range(n) if i != line)
        r_table, perm, l_table = _split_on_line(perm, n, line)
        if r_table.bits:
            rights.append(SingleTargetGate(line, other_lines, r_table))
        if l_table.bits:
            lefts.append(SingleTargetGate(line, other_lines, l_table))
        # invariant: perm now preserves bits 0..line
        assert all(
            ((perm[x] ^ x) >> b) & 1 == 0
            for x in range(1 << n)
            for b in range(line + 1)
        )
    assert perm == list(range(1 << n))
    return lefts, rights


def decomposition_based_synthesis(
    permutation: BitPermutation, effort: str = "medium"
) -> ReversibleCircuit:
    """Synthesize via Young subgroups, lowering to MCT gates.

    The result realizes exactly the input permutation (verified by the
    test-suite against :meth:`ReversibleCircuit.permutation`).
    """
    lefts, rights = young_subgroup_decomposition(permutation)
    gates = list(rights) + list(reversed(lefts))
    circuit = single_target_gates_to_circuit(
        gates, permutation.num_bits, effort=effort
    )
    circuit.name = "dbs"
    return circuit

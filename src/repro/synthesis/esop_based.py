"""ESOP-based reversible synthesis — ancilla-free oracles.

Realizes the Bennett-embedded unitary of Sec. V, Eq. (4) with ``k = 0``:

    U : |x>|y> -> |x>|y ^ f(x)>

Each cube of an ESOP cover of output ``f_j`` becomes one MCT gate with
the cube literals as (positive/negative) controls and target line
``n + j``.  Because all targets are off the input lines, gate order is
irrelevant and the inputs are preserved exactly.

This is the "simple reversible synthesis method which does not require
additional ancilla qubits" whose scalability limit (~25 variables) the
paper discusses in Sec. IX; the scaling bench reproduces that claim.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..boolean.cube import Cube
from ..boolean.esop import minimize_esop
from ..boolean.truth_table import MultiTruthTable, TruthTable
from .reversible import MctGate, ReversibleCircuit


def esop_synthesis(
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
    effort: str = "medium",
) -> ReversibleCircuit:
    """Bennett-style XOR-oracle circuit on ``n + m`` lines.

    Line layout: inputs on ``0..n-1``, outputs on ``n..n+m-1`` (targets
    start in |0> for a plain function evaluation, or hold ``y`` for the
    XOR semantics).
    """
    tables = _as_tables(function)
    n = tables[0].num_vars
    circuit = ReversibleCircuit(n + len(tables), name="esop")
    for j, table in enumerate(tables):
        cubes = minimize_esop(table, effort=effort)
        circuit.extend(cubes_to_mct(cubes, target=n + j))
    return circuit


def esop_synthesis_from_cubes(
    cubes_per_output: Sequence[Sequence[Cube]], num_inputs: int
) -> ReversibleCircuit:
    """Build the oracle directly from precomputed ESOP covers."""
    circuit = ReversibleCircuit(
        num_inputs + len(cubes_per_output), name="esop"
    )
    for j, cubes in enumerate(cubes_per_output):
        circuit.extend(cubes_to_mct(cubes, target=num_inputs + j))
    return circuit


def cubes_to_mct(cubes: Sequence[Cube], target: int) -> List[MctGate]:
    """One MCT per cube; empty cube = unconditional NOT."""
    gates = []
    for cube in cubes:
        controls = []
        polarity = []
        for var, positive in cube.literals():
            controls.append(var)
            polarity.append(positive)
        gates.append(MctGate(target, tuple(controls), tuple(polarity)))
    return gates


def verify_esop_circuit(
    circuit: ReversibleCircuit,
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
) -> bool:
    """Check U|x>|0> = |x>|f(x)> for all x (exhaustive)."""
    tables = _as_tables(function)
    n = tables[0].num_vars
    for x in range(1 << n):
        output = circuit.apply(x)
        if output & ((1 << n) - 1) != x:
            return False
        for j, table in enumerate(tables):
            if (output >> (n + j)) & 1 != table(x):
                return False
    return True


def _as_tables(function) -> List[TruthTable]:
    if isinstance(function, TruthTable):
        return [function]
    if isinstance(function, MultiTruthTable):
        return list(function.outputs)
    return list(function)

"""Embedding irreversible functions into reversible ones (Sec. V).

Two strategies from the paper:

* :func:`bennett_embedding` — Eq. (3): ``g(x, y) = (x, y ^ f(x))`` on
  ``n + m`` lines; always applicable, never minimal.
* :func:`explicit_embedding` — Eq. (2): find a reversible ``g`` on
  ``r`` lines whose restriction to ``(x, 0...0)`` computes ``f`` in
  place.  Finding minimal ``r`` is coNP-hard [53]; this implementation
  computes the information-theoretic lower bound
  ``r >= n_inputs'`` needed to disambiguate output multiplicities and
  constructs a matching bijection greedily.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple, Union

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import MultiTruthTable, TruthTable


def bennett_embedding(
    function: Union[TruthTable, MultiTruthTable]
) -> BitPermutation:
    """The reversible function g(x, y) = (x, y XOR f(x)).

    Input layout: x on bits 0..n-1, y on bits n..n+m-1.
    """
    tables = (
        [function] if isinstance(function, TruthTable) else list(function.outputs)
    )
    n = tables[0].num_vars
    m = len(tables)
    image = []
    for value in range(1 << (n + m)):
        x = value & ((1 << n) - 1)
        y = value >> n
        fx = 0
        for j, table in enumerate(tables):
            fx |= table(x) << j
        image.append(x | ((y ^ fx) << n))
    return BitPermutation(image)


def minimum_garbage_bits(function: Union[TruthTable, MultiTruthTable]) -> int:
    """Lower bound on garbage outputs: ceil(log2(max output multiplicity))."""
    multiplicity = _output_multiplicities(function)
    worst = max(multiplicity.values())
    return math.ceil(math.log2(worst)) if worst > 1 else 0


def explicit_embedding(
    function: Union[TruthTable, MultiTruthTable]
) -> Tuple[BitPermutation, int]:
    """In-place embedding per Eq. (2).

    Returns ``(g, r)`` where ``g`` is a reversible function on ``r``
    bits with ``g(x, 0^{r-n}) = (f(x), garbage)``: output bits
    ``0..m-1`` carry ``f``, the remaining bits are garbage.  ``r`` is
    ``max(n + a, m + ceil(log2 max-multiplicity) + a')`` realized
    greedily at the information-theoretic minimum
    ``r = max(n, m + g_min)`` with ``g_min = minimum_garbage_bits``.
    """
    tables = (
        [function] if isinstance(function, TruthTable) else list(function.outputs)
    )
    n = tables[0].num_vars
    m = len(tables)
    g_min = minimum_garbage_bits(function)
    r = max(n, m + g_min)

    def evaluate(x: int) -> int:
        fx = 0
        for j, table in enumerate(tables):
            fx |= table(x) << j
        return fx

    # assign each constrained input (x, 0) the output (f(x), counter)
    image: Dict[int, int] = {}
    used = set()
    counters: Dict[int, int] = {}
    for x in range(1 << n):
        fx = evaluate(x)
        counter = counters.get(fx, 0)
        counters[fx] = counter + 1
        output = fx | (counter << m)
        if output >= (1 << r) or output in used:
            raise AssertionError("embedding bound violated")
        image[x] = output        # inputs (x, 0..0) are exactly 0..2^n-1
        used.add(output)
    # complete to a bijection on the unconstrained inputs
    free_outputs = [v for v in range(1 << r) if v not in used]
    index = 0
    full_image: List[int] = []
    for value in range(1 << r):
        if value in image:
            full_image.append(image[value])
        else:
            full_image.append(free_outputs[index])
            index += 1
    return BitPermutation(full_image), r


def verify_embedding(
    g: BitPermutation,
    function: Union[TruthTable, MultiTruthTable],
    in_place: bool,
) -> bool:
    """Check the embedding equations against ``f`` exhaustively."""
    tables = (
        [function] if isinstance(function, TruthTable) else list(function.outputs)
    )
    n = tables[0].num_vars
    m = len(tables)

    def evaluate(x: int) -> int:
        fx = 0
        for j, table in enumerate(tables):
            fx |= table(x) << j
        return fx

    if in_place:
        for x in range(1 << n):
            if g(x) & ((1 << m) - 1) != evaluate(x):
                return False
        return True
    for value in range(1 << (n + m)):
        x = value & ((1 << n) - 1)
        y = value >> n
        expected = x | ((y ^ evaluate(x)) << n)
        if g(value) != expected:
            return False
    return True


def _output_multiplicities(
    function: Union[TruthTable, MultiTruthTable]
) -> Dict[int, int]:
    tables = (
        [function] if isinstance(function, TruthTable) else list(function.outputs)
    )
    n = tables[0].num_vars
    counts: Dict[int, int] = {}
    for x in range(1 << n):
        fx = 0
        for j, table in enumerate(tables):
            fx |= table(x) << j
        counts[fx] = counts.get(fx, 0) + 1
    return counts

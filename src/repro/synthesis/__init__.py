"""Reversible logic synthesis: the RevKit algorithm suite (Sec. V)."""

from .bdd_based import BddSynthesisResult, bdd_synthesis, verify_bdd_synthesis
from .decomposition import (
    decomposition_based_synthesis,
    young_subgroup_decomposition,
)
from .embedding import (
    bennett_embedding,
    explicit_embedding,
    minimum_garbage_bits,
    verify_embedding,
)
from .esop_based import (
    cubes_to_mct,
    esop_synthesis,
    esop_synthesis_from_cubes,
    verify_esop_circuit,
)
from .exact import all_mct_gates, exact_synthesis, minimum_gate_count
from .linear import (
    Gf2Matrix,
    cnot_circuit_to_matrix,
    gaussian_synthesis,
    pmh_synthesis,
)
from .lut_based import (
    AncillaBudgetError,
    LutSynthesisResult,
    lut_synthesis,
    lut_synthesis_from_mapping,
    verify_lut_synthesis,
)
from .pebbling import (
    PebbleGameError,
    bennett_moves,
    checkpoint_moves,
    optimal_moves,
    pebble_tradeoff_curve,
    validate_moves,
)
from .reversible import MctGate, ReversibleCircuit
from .single_target import SingleTargetGate, single_target_gates_to_circuit
from .transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)

__all__ = [
    "BddSynthesisResult",
    "bdd_synthesis",
    "verify_bdd_synthesis",
    "decomposition_based_synthesis",
    "young_subgroup_decomposition",
    "bennett_embedding",
    "explicit_embedding",
    "minimum_garbage_bits",
    "verify_embedding",
    "cubes_to_mct",
    "esop_synthesis",
    "esop_synthesis_from_cubes",
    "verify_esop_circuit",
    "all_mct_gates",
    "exact_synthesis",
    "minimum_gate_count",
    "Gf2Matrix",
    "cnot_circuit_to_matrix",
    "gaussian_synthesis",
    "pmh_synthesis",
    "AncillaBudgetError",
    "LutSynthesisResult",
    "lut_synthesis",
    "lut_synthesis_from_mapping",
    "verify_lut_synthesis",
    "PebbleGameError",
    "bennett_moves",
    "checkpoint_moves",
    "optimal_moves",
    "pebble_tradeoff_curve",
    "validate_moves",
    "MctGate",
    "ReversibleCircuit",
    "SingleTargetGate",
    "single_target_gates_to_circuit",
    "bidirectional_synthesis",
    "transformation_based_synthesis",
]

"""Transformation-based synthesis (TBS) — the ``tbs`` command.

The Miller–Maslov–Dueck algorithm [43]: walk the truth table of a
reversible function in input order and, at each row, append Toffoli
gates that make the row correct without disturbing the rows already
fixed.  The classic variant works purely on the output side; the
bidirectional variant may instead fix the row from the input side when
that is cheaper, typically yielding smaller cascades.

Gate-safety invariant (why fixed rows stay fixed): every appended gate
has its positive controls on the 1-bits of a value ``v >= x`` while all
fixed rows are the identity on values ``< x``; a control set that is a
bit-subset of ``k`` implies ``v <= k``, so no gate can fire on a fixed
row.
"""

from __future__ import annotations

from typing import List, Tuple

from ..boolean.permutation import BitPermutation
from .reversible import MctGate, ReversibleCircuit


def _bits(value: int) -> List[int]:
    out = []
    bit = 0
    while value >> bit:
        if (value >> bit) & 1:
            out.append(bit)
        bit += 1
    return out


def _fix_value(start: int, goal: int) -> Tuple[List[MctGate], int]:
    """Gates (in application order) transforming ``start`` into ``goal``.

    Phase 1 turns on the bits of ``goal & ~start`` (controls = ones of
    the current value); phase 2 turns off ``start & ~goal`` (controls =
    ones of the current value minus the target).  All controls
    positive.
    """
    gates: List[MctGate] = []
    current = start
    for bit in _bits(goal & ~current):
        controls = tuple(_bits(current))
        gates.append(MctGate(bit, controls))
        current |= 1 << bit
    for bit in _bits(current & ~goal):
        controls = tuple(b for b in _bits(current) if b != bit)
        gates.append(MctGate(bit, controls))
        current &= ~(1 << bit)
    assert current == goal
    return gates, len(gates)


def transformation_based_synthesis(
    permutation: BitPermutation,
) -> ReversibleCircuit:
    """Basic (output-side) MMD synthesis.

    Returns a reversible circuit whose permutation equals the input.
    """
    n = permutation.num_bits
    perm = list(permutation.image)
    output_gates: List[MctGate] = []  # in discovery order
    for x in range(1 << n):
        y = perm[x]
        if y == x:
            continue
        gates, _ = _fix_value(y, x)
        # each gate acts on the *output* side: perm <- g o perm
        for gate in gates:
            for row in range(1 << n):
                perm[row] = gate.apply(perm[row])
            output_gates.append(gate)
    assert perm == list(range(1 << n))
    # perm_final = G_k o ... o G_1 o f = I  =>  f = G_1 o ... o G_k,
    # i.e. in application order the last-discovered gate runs first.
    circuit = ReversibleCircuit(n, name="tbs")
    circuit.extend(reversed(output_gates))
    return circuit


def bidirectional_synthesis(permutation: BitPermutation) -> ReversibleCircuit:
    """Bidirectional MMD: fix each row from the cheaper side.

    For row ``x`` with current output ``y = p(x)`` and current preimage
    ``z = p^{-1}(x)``, either transform ``y -> x`` at the output or
    ``x -> z`` at the input, choosing the variant needing fewer gates
    (ties go to the output side, as in the original paper).
    """
    n = permutation.num_bits
    perm = list(permutation.image)
    output_gates: List[MctGate] = []   # discovery order, output side
    input_gates: List[MctGate] = []    # application order, input side
    for x in range(1 << n):
        y = perm[x]
        if y == x:
            continue
        z = perm.index(x)
        out_candidate, out_cost = _fix_value(y, x)
        in_candidate, in_cost = _fix_value(x, z)
        if out_cost <= in_cost:
            for gate in out_candidate:
                for row in range(1 << n):
                    perm[row] = gate.apply(perm[row])
                output_gates.append(gate)
        else:
            # input-side composite m maps x -> z (gates applied in
            # order); update perm as p'(v) = p(m(v))
            composite = in_candidate
            new_perm = list(perm)
            for v in range(1 << n):
                value = v
                for gate in composite:
                    value = gate.apply(value)
                new_perm[v] = perm[value]
            perm = new_perm
            # circuit order for this composite is its inverse: gates
            # reversed (each MCT is self-inverse); composites stay in
            # discovery order (earlier rows act first on the input side)
            input_gates.extend(reversed(composite))
        assert perm[x] == x
    assert perm == list(range(1 << n))
    # p_final = H o f o m_1 o m_2 o ... = I, so
    # f = H^-1 o (m_1 o m_2 o ...)^-1: the inverted input composites run
    # first (earliest row innermost), then the inverted output gates.
    circuit = ReversibleCircuit(n, name="tbs-bidir")
    circuit.extend(input_gates)
    circuit.extend(reversed(output_gates))
    return circuit

"""LUT-based hierarchical reversible synthesis (LHRS, [65]).

Maps the function into a k-LUT network
(:func:`repro.boolean.network.lut_map`), then realizes each LUT as a
single-target gate on a fresh ancilla via ESOP-based synthesis.
Outputs are copied out and intermediates uncomputed.

Two ancilla strategies (the qubits-vs-gates trade-off of Sec. V's
pebbling discussion [66], [67]):

* ``strategy="bennett"`` — compute all LUTs, copy outputs, uncompute
  all (maximum ancillae, minimum gates);
* ``strategy="eager"`` — uncompute a LUT as soon as its last fanout is
  consumed, recycling its ancilla (fewer ancillae, more gates).

:func:`lut_synthesis` accepts an optional ``ancilla_budget`` and raises
:class:`AncillaBudgetError` if even eager cleanup cannot fit, modeling
the "take k as an input parameter" challenge highlighted in Sec. IX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..boolean.network import LogicNetwork, LutNetwork, lut_map
from ..boolean.truth_table import MultiTruthTable, TruthTable
from .reversible import MctGate, ReversibleCircuit
from .single_target import SingleTargetGate


class AncillaBudgetError(RuntimeError):
    """Raised when a synthesis cannot meet the requested qubit budget."""


@dataclass
class LutSynthesisResult:
    """Circuit plus bookkeeping of the LHRS flow."""

    circuit: ReversibleCircuit
    num_inputs: int
    num_outputs: int
    num_ancillae: int
    num_luts: int
    strategy: str

    @property
    def total_lines(self) -> int:
        return self.circuit.num_lines


def lut_synthesis(
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
    k: int = 4,
    strategy: str = "bennett",
    ancilla_budget: Optional[int] = None,
    effort: str = "medium",
) -> LutSynthesisResult:
    """Hierarchical LUT-based synthesis.

    Line layout: inputs ``0..n-1``, outputs ``n..n+m-1``, ancillae
    above.  Realizes ``|x>|0>|0> -> |x>|f(x)>|0>``.
    """
    tables = _as_tables(function)
    network = LogicNetwork.from_truth_tables(tables)
    mapped = lut_map(network, k)
    return lut_synthesis_from_mapping(
        mapped,
        num_outputs=len(tables),
        strategy=strategy,
        ancilla_budget=ancilla_budget,
        effort=effort,
    )


def lut_synthesis_from_mapping(
    mapped: LutNetwork,
    num_outputs: int,
    strategy: str = "bennett",
    ancilla_budget: Optional[int] = None,
    effort: str = "medium",
) -> LutSynthesisResult:
    """Run hierarchical (LHRS) synthesis over an existing LUT mapping.

    Args:
        mapped: the k-LUT network to turn into a reversible circuit.
        num_outputs: how many of the network's roots are outputs.
        strategy: ancilla discipline — ``"bennett"`` (uncompute at the
            end) or ``"eager"`` (uncompute as soon as possible).
        ancilla_budget: optional cap on simultaneously live ancillae;
            raises :class:`AncillaBudgetError` when infeasible.
        effort: pebbling effort for the eager strategy.

    Returns:
        A :class:`LutSynthesisResult` with the circuit and the
        line/ancilla bookkeeping.
    """
    if strategy not in ("bennett", "eager"):
        raise ValueError("strategy must be 'bennett' or 'eager'")
    n = mapped.num_inputs
    m = num_outputs
    if strategy == "bennett":
        result = _bennett_flow(mapped, n, m, effort)
    else:
        result = _eager_flow(mapped, n, m, effort)
    if ancilla_budget is not None and result.num_ancillae > ancilla_budget:
        if strategy == "bennett":
            # retry with the thrifty strategy before giving up
            result = _eager_flow(mapped, n, m, effort)
            if result.num_ancillae <= ancilla_budget:
                return result
        raise AncillaBudgetError(
            f"needs {result.num_ancillae} ancillae, budget is "
            f"{ancilla_budget}"
        )
    return result


def _lut_gates(
    lut, line_of: Dict[int, int], target: int, effort: str
) -> List[MctGate]:
    """Single-target gate realizing one LUT onto a clean target."""
    control_lines = tuple(line_of[leaf] for leaf in lut.leaves)
    gate = SingleTargetGate(target, control_lines, lut.table)
    return gate.to_mct_gates(effort=effort)


def _copy_outputs(
    mapped: LutNetwork,
    line_of: Dict[int, int],
    n: int,
    circuit: ReversibleCircuit,
) -> None:
    for j, (node, complemented) in enumerate(mapped.outputs):
        out = n + j
        if node == 0:  # constant-0 network node
            if complemented:
                circuit.add_gate(out)
            continue
        source = line_of[node]
        circuit.add_gate(out, (source,))
        if complemented:
            circuit.add_gate(out)


def _bennett_flow(
    mapped: LutNetwork, n: int, m: int, effort: str
) -> LutSynthesisResult:
    line_of: Dict[int, int] = {1 + i: i for i in range(n)}
    next_line = n + m
    compute: List[MctGate] = []
    for lut in mapped.luts:
        line_of[lut.node] = next_line
        next_line += 1
        compute.extend(_lut_gates(lut, line_of, line_of[lut.node], effort))
    circuit = ReversibleCircuit(next_line, name="lhrs-bennett")
    circuit.extend(compute)
    _copy_outputs(mapped, line_of, n, circuit)
    circuit.extend(reversed(compute))
    return LutSynthesisResult(
        circuit=circuit,
        num_inputs=n,
        num_outputs=m,
        num_ancillae=len(mapped.luts),
        num_luts=len(mapped.luts),
        strategy="bennett",
    )


def _eager_flow(
    mapped: LutNetwork, n: int, m: int, effort: str
) -> LutSynthesisResult:
    """Recomputation-free eager pebbling.

    Output LUTs that feed no other LUT are computed directly onto their
    output line ("final" nodes, never uncomputed).  An internal node's
    ancilla is released as soon as every reader is final or already
    released; the pebble-game rule (fanins must stay pebbled while a
    node is pebbled) holds by induction, so the replayed uncompute
    gates always see live control lines.
    """
    lut_of: Dict[int, object] = {lut.node: lut for lut in mapped.luts}
    readers: Dict[int, Set[int]] = {lut.node: set() for lut in mapped.luts}
    for lut in mapped.luts:
        for leaf in lut.leaves:
            if leaf in readers:
                readers[leaf].add(lut.node)

    # choose "final" nodes: the first output occurrence of a LUT node
    # with no internal readers is computed in place on its output line
    final_line: Dict[int, int] = {}
    for j, (node, _complemented) in enumerate(mapped.outputs):
        if node in lut_of and not readers[node] and node not in final_line:
            final_line[node] = n + j

    line_of: Dict[int, int] = {1 + i: i for i in range(n)}
    gates_for: Dict[int, List[MctGate]] = {}
    unpebbled: Set[int] = set()
    free_lines: List[int] = []
    next_line = n + m
    peak_ancillae = 0
    live_ancillae = 0
    circuit_gates: List[MctGate] = []

    def allocate() -> int:
        nonlocal next_line, live_ancillae, peak_ancillae
        line = free_lines.pop() if free_lines else next_line
        if line == next_line:
            next_line += 1
        live_ancillae += 1
        peak_ancillae = max(peak_ancillae, live_ancillae)
        return line

    computed: Set[int] = set()

    def releasable(node: int) -> bool:
        return (
            node in gates_for
            and node not in final_line
            and all(
                r in unpebbled or (r in final_line and r in computed)
                for r in readers[node]
            )
        )

    def cascade() -> None:
        nonlocal live_ancillae
        progress = True
        while progress:
            progress = False
            # reverse topological order: parents release before children
            for lut in reversed(mapped.luts):
                node = lut.node
                if releasable(node):
                    circuit_gates.extend(reversed(gates_for[node]))
                    free_lines.append(line_of[node])
                    live_ancillae -= 1
                    unpebbled.add(node)
                    del gates_for[node]
                    del line_of[node]
                    progress = True

    for lut in mapped.luts:
        if lut.node in final_line:
            line = final_line[lut.node]
        else:
            line = allocate()
        line_of[lut.node] = line
        gates = _lut_gates(lut, line_of, line, effort)
        circuit_gates.extend(gates)
        computed.add(lut.node)
        if lut.node not in final_line:
            gates_for[lut.node] = gates
        cascade()

    circuit = ReversibleCircuit(max(next_line, n + m), name="lhrs-eager")
    circuit.extend(circuit_gates)
    # copy non-final outputs; fix complemented finals with a NOT
    for j, (node, complemented) in enumerate(mapped.outputs):
        out = n + j
        if final_line.get(node) == out:
            if complemented:
                circuit.add_gate(out)
            continue
        if node == 0:
            if complemented:
                circuit.add_gate(out)
            continue
        circuit.add_gate(out, (line_of[node],))
        if complemented:
            circuit.add_gate(out)
    # after output copies, remaining internal values can be uncomputed
    # in reverse topological order (parents before children, so every
    # node's fanins are still live when its gates are replayed)
    for lut in reversed(mapped.luts):
        node = lut.node
        if node in gates_for:
            circuit.extend(reversed(gates_for[node]))
            del gates_for[node]
    return LutSynthesisResult(
        circuit=circuit,
        num_inputs=n,
        num_outputs=m,
        num_ancillae=peak_ancillae,
        num_luts=len(mapped.luts),
        strategy="eager",
    )


def verify_lut_synthesis(
    result: LutSynthesisResult,
    function: Union[TruthTable, MultiTruthTable, Sequence[TruthTable]],
) -> bool:
    """Exhaustively check |x>|0>|0> -> |x>|f(x)>|0>."""
    tables = _as_tables(function)
    n = result.num_inputs
    for x in range(1 << n):
        output = result.circuit.apply(x)
        if output & ((1 << n) - 1) != x:
            return False
        for j, table in enumerate(tables):
            if (output >> (n + j)) & 1 != table(x):
                return False
        if output >> (n + result.num_outputs):
            return False
    return True


def _as_tables(function) -> List[TruthTable]:
    if isinstance(function, TruthTable):
        return [function]
    if isinstance(function, MultiTruthTable):
        return list(function.outputs)
    return list(function)

"""Reversible pebble games — trading qubits for gates (Sec. V, [66]).

Hierarchical synthesis allocates one ancilla per intermediate value; a
*reversible pebble game* on the dependency chain lets a bounded number
of pebbles (ancillae) cover an arbitrarily long computation at the cost
of recomputation (extra gates).  This module implements the game on a
chain of ``n`` steps:

* move ``(+i)`` pebbles step ``i`` (legal iff step ``i-1`` is pebbled
  or ``i == 0``) — circuit-wise: replay step i's compute gates;
* move ``(-i)`` unpebbles step ``i`` under the same condition —
  circuit-wise: replay the same gates (self-inverse).

Strategies:

* :func:`bennett_moves` — pebble everything, unpebble in reverse;
  uses ``n`` pebbles and ``2n`` moves.
* :func:`checkpoint_moves` — Bennett's recursive checkpointing with a
  pebble budget ``p``; fewer pebbles, super-linear move count.
* :func:`optimal_moves` — breadth-first search over game states for
  small chains (exact minimum moves for a given budget).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

Move = Tuple[int, bool]  # (step index, pebble? else unpebble)


class PebbleGameError(ValueError):
    """Raised for illegal move sequences or infeasible budgets."""


def validate_moves(
    num_steps: int, moves: List[Move], require_clean: bool = True
) -> int:
    """Replay a move sequence, checking legality.

    Returns the peak pebble count.  The final step must end pebbled
    (it carries the result) and, if ``require_clean``, all others must
    end unpebbled.
    """
    pebbled = [False] * num_steps
    peak = 0
    for step, place in moves:
        if not 0 <= step < num_steps:
            raise PebbleGameError(f"step {step} out of range")
        if step > 0 and not pebbled[step - 1]:
            raise PebbleGameError(
                f"move on step {step} requires step {step - 1} pebbled"
            )
        if pebbled[step] == place:
            raise PebbleGameError(
                f"redundant move on step {step} (already {place})"
            )
        pebbled[step] = place
        peak = max(peak, sum(pebbled))
    if not pebbled[num_steps - 1]:
        raise PebbleGameError("result step must end pebbled")
    if require_clean and any(pebbled[:-1]):
        raise PebbleGameError("intermediate steps must end unpebbled")
    return peak


def bennett_moves(num_steps: int) -> List[Move]:
    """Compute all, uncompute all but the last: n pebbles, 2n-1 moves."""
    moves: List[Move] = [(i, True) for i in range(num_steps)]
    moves.extend((i, False) for i in reversed(range(num_steps - 1)))
    return moves


def checkpoint_moves(num_steps: int, pebbles: int) -> List[Move]:
    """Bennett's recursive checkpointing under a pebble budget.

    Recursion: to pebble the end of a range given its start boundary,
    split at a midpoint checkpoint; pebble the midpoint, recurse on the
    second half with one pebble fewer, then unpebble the midpoint by
    re-running the first half backwards.  Requires
    ``pebbles >= ceil(log2(num_steps)) + 1``; raises otherwise.
    """
    if pebbles < 1:
        raise PebbleGameError("need at least one pebble")
    moves: List[Move] = []

    def sweep(start: int, end: int, place: bool) -> None:
        """(Un)pebble every step in [start, end) sequentially."""
        rng = range(start, end) if place else reversed(range(start, end))
        moves.extend((i, place) for i in rng)

    def solve(start: int, end: int, budget: int) -> None:
        """Pebble step end-1 (and clean the rest of [start, end));
        caller guarantees step start-1 is pebbled."""
        length = end - start
        if length <= 0:
            return
        if length <= budget:
            sweep(start, end, True)
            sweep(start, end - 1, False)
            return
        if budget <= 1:
            raise PebbleGameError(
                f"budget {pebbles} too small for {num_steps} steps"
            )
        mid = start + (length + 1) // 2
        # pebble the checkpoint mid-1 using the full budget
        solve(start, mid, budget)
        # pebble the result using the remaining budget
        solve(mid, end, budget - 1)
        # remove the checkpoint by re-running the first half
        unsolve(start, mid, budget - 1)

    def unsolve(start: int, end: int, budget: int) -> None:
        """Unpebble step end-1 (mirror of solve)."""
        length = end - start
        if length <= 0:
            return
        if length <= budget + 1:
            sweep(start, end - 1, True)
            sweep(start, end, False)
            return
        if budget <= 1:
            raise PebbleGameError(
                f"budget {pebbles} too small for {num_steps} steps"
            )
        mid = start + (length + 1) // 2
        solve(start, mid, budget)
        unsolve(mid, end, budget - 1)
        unsolve(start, mid, budget - 1)

    solve(0, num_steps, pebbles)
    return moves


def optimal_moves(num_steps: int, pebbles: int) -> Optional[List[Move]]:
    """Exact minimum-move solution by BFS over game states.

    State = pebble bitmask.  Practical for chains up to ~16 steps.
    Returns None if the budget is infeasible.
    """
    if num_steps > 20:
        raise PebbleGameError("chain too long for exact search")
    start = 0
    goal = 1 << (num_steps - 1)
    parents: Dict[int, Tuple[int, Move]] = {start: (start, (-1, True))}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        if state == goal:
            break
        for step in range(num_steps):
            if step > 0 and not (state >> (step - 1)) & 1:
                continue
            nxt = state ^ (1 << step)
            placing = bool((nxt >> step) & 1)
            if placing and bin(nxt).count("1") > pebbles:
                continue
            if nxt not in parents:
                parents[nxt] = (state, (step, placing))
                queue.append(nxt)
    if goal not in parents:
        return None
    moves: List[Move] = []
    state = goal
    while state != start:
        prev, move = parents[state]
        moves.append(move)
        state = prev
    moves.reverse()
    return moves


def move_count(moves: List[Move]) -> int:
    return len(moves)


def pebble_tradeoff_curve(
    num_steps: int, budgets: List[int]
) -> List[Tuple[int, int]]:
    """(pebbles, moves) points of the checkpointing strategy — the
    qubits-for-gates trade-off curve the paper's Sec. V describes."""
    points = []
    for budget in budgets:
        try:
            moves = checkpoint_moves(num_steps, budget)
        except PebbleGameError:
            continue
        peak = validate_moves(num_steps, moves)
        points.append((peak, len(moves)))
    return points

"""Single-target gates and their MCT realization.

A *single-target gate* T_c(f) flips one target line iff a Boolean
control function f over the other lines evaluates to 1.  Young-subgroup
decomposition (``dbs``) produces exactly such gates; they are lowered
to MCT cascades through an ESOP cover of the control function — one
MCT per cube, with cube literals becoming positive/negative controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..boolean.cube import Cube
from ..boolean.esop import minimize_esop
from ..boolean.truth_table import TruthTable
from .reversible import MctGate, ReversibleCircuit


@dataclass(frozen=True)
class SingleTargetGate:
    """Target line + control function over ``control_lines``.

    ``function`` is a truth table over ``len(control_lines)`` variables;
    variable i of the table corresponds to line ``control_lines[i]``.
    """

    target: int
    control_lines: tuple
    function: TruthTable

    def __post_init__(self) -> None:
        if self.function.num_vars != len(self.control_lines):
            raise ValueError("control function arity mismatch")
        if self.target in self.control_lines:
            raise ValueError("target cannot be a control line")

    def apply(self, value: int) -> int:
        local = 0
        for i, line in enumerate(self.control_lines):
            if (value >> line) & 1:
                local |= 1 << i
        if self.function(local):
            return value ^ (1 << self.target)
        return value

    def to_mct_gates(self, effort: str = "medium") -> List[MctGate]:
        """Lower to MCTs via an ESOP cover of the control function."""
        gates: List[MctGate] = []
        for cube in minimize_esop(self.function, effort=effort):
            controls = []
            polarity = []
            for var, positive in cube.literals():
                controls.append(self.control_lines[var])
                polarity.append(positive)
            gates.append(MctGate(self.target, tuple(controls), tuple(polarity)))
        return gates


def single_target_gates_to_circuit(
    gates: Sequence[SingleTargetGate], num_lines: int, effort: str = "medium"
) -> ReversibleCircuit:
    """Lower a cascade of single-target gates to one MCT circuit."""
    circuit = ReversibleCircuit(num_lines, name="stg")
    for gate in gates:
        circuit.extend(gate.to_mct_gates(effort=effort))
    return circuit

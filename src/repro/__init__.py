"""repro — reproduction of "Programming Quantum Computers Using Design
Automation" (Soeken, Häner, Roetteler, DATE 2018).

Subpackages
-----------
``repro.core``
    Quantum circuit IR: gates, circuits, statistics, DAG.
``repro.emit``
    The unified emission registry: pluggable backends rendering
    compiled circuits as OpenQASM 2/3, Q#, ProjectQ, cirq or textual
    QIR, with round-trip import for OpenQASM 2.
``repro.simulator``
    Statevector, stabilizer (CHP), noisy (IBM-QE substitute) and
    resource-counting backends.
``repro.engines``
    The simulation-engine registry: statevector, stabilizer,
    Monte-Carlo and exact density-matrix backends behind one
    ``repro.engines.run(engine, circuit, ...)`` front door, with the
    shared ``NoiseModel`` and its IBM-QE calibration preset.
``repro.boolean``
    Boolean function layer: truth tables, ESOPs, BDDs, XAG networks,
    bent functions, permutations, Python-predicate compilation.
``repro.synthesis``
    Reversible logic synthesis: transformation-based, decomposition-
    based, ESOP-based, BDD-based, LUT-based (LHRS), embeddings, exact
    search, pebble games.
``repro.mapping``
    Toffoli-network to Clifford+T mapping (Barenco ladders,
    relative-phase Toffolis).
``repro.optimization``
    revsimp gate cancellation and T-par phase folding.
``repro.pipeline``
    The pass manager: a unified compilation pipeline with per-pass
    statistics, result caching, verification, and the paper's flow
    presets (``flows.EQ5``, ``flows.QSHARP``, ``flows.DEVICE``).
``repro.resilience``
    The resilience layer: cooperative deadlines, retry policies with
    deterministic backoff, a fault-injection harness for chaos
    testing, and the typed failure taxonomy behind graceful cache
    degradation.
``repro.verify``
    Tiered equivalence checking: the ``EquivalenceChecker`` picks the
    cheapest sound tier per pass (permutation tables, stabilizer
    tableaus, dense unitaries, seeded fidelity probes), every verdict
    names its tier, and skipped checks are always explicit.
``repro.compiler``
    The compiler facade: ``repro.compile(workload, target=...)``
    normalizes any workload shape, resolves a ``Target`` preset to a
    pass sequence, and returns a ``CompilationResult`` with lazy
    QASM/Q#/ProjectQ emission; ``CompilerSession`` batches
    compilations and parameter sweeps over a shared pass cache.
``repro.frameworks``
    ProjectQ-compatible eDSL and Q# code generation.
``repro.revkit``
    The RevKit command shell (``revgen; tbs; revsimp; rptm; tpar; ps``).
``repro.algorithms``
    Hidden shift (the paper's running example), Deutsch–Jozsa,
    Bernstein–Vazirani, Grover.
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    arith,
    boolean,
    compiler,
    core,
    emit,
    engines,
    mapping,
    optimization,
    pipeline,
    resilience,
    revkit,
    simulator,
    synthesis,
    verify,
)
from .compiler import (
    CompilationResult,
    CompilerSession,
    Target,
    compile,
    targets,
)

__all__ = [
    "algorithms",
    "arith",
    "boolean",
    "compiler",
    "core",
    "emit",
    "engines",
    "mapping",
    "optimization",
    "pipeline",
    "resilience",
    "revkit",
    "simulator",
    "synthesis",
    "verify",
    "CompilationResult",
    "CompilerSession",
    "Target",
    "compile",
    "targets",
    "__version__",
]

"""T-count / T-depth optimization — the ``tpar`` command.

Implements the phase-folding core of the T-par algorithm [69]: the
circuit is split into maximal {CNOT, X, SWAP, phase} regions separated
by Hadamards (or other unsupported gates); within each region the phase
polynomial is computed and equal-parity phase gates merge, after which
the region is re-emitted with the merged rotations at their earliest
legal positions.  The result is unitary-equivalent (up to global
phase) with a T-count that never increases.

:func:`t_depth_estimate` additionally reports the T-depth achievable
by scheduling each region's T-parities into linearly-independent
layers (greedy matroid partitioning).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from .phase_polynomial import (
    PhaseRegion,
    fold_region,
    greedy_t_layers,
    is_region_gate,
)


def tpar_optimize(circuit: QuantumCircuit) -> QuantumCircuit:
    """Phase-fold every CNOT+phase region of ``circuit``.

    This is the shell's ``tpar`` command (the T-par core [69]).

    Args:
        circuit: the Clifford+T (or phase-gate-bearing) circuit.

    Returns:
        A new circuit, unitary-equivalent up to global phase, whose
        T-count never exceeds the input's.
    """
    out = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, circuit.name + "_tpar"
    )
    region: List[Gate] = []

    def flush() -> None:
        if not region:
            return
        folded = fold_region(circuit.num_qubits, region)
        out.extend(folded)
        region.clear()

    for gate in circuit.gates:
        if is_region_gate(gate):
            region.append(gate)
        else:
            flush()
            out.append(gate)
    flush()
    return out


def region_statistics(circuit: QuantumCircuit) -> List[Tuple[int, int, int]]:
    """Per-region (input T gates, folded T gates, T layers)."""
    stats: List[Tuple[int, int, int]] = []
    region: List[Gate] = []

    def flush() -> None:
        if not region:
            return
        before = sum(1 for g in region if g.name in ("t", "tdg"))
        analysis = PhaseRegion(circuit.num_qubits, list(region))
        odd_masks = [
            term.mask
            for term in analysis.terms.values()
            if term.steps % 2 == 1
        ]
        layers = greedy_t_layers(odd_masks, circuit.num_qubits)
        stats.append((before, len(odd_masks), len(layers)))
        region.clear()

    for gate in circuit.gates:
        if is_region_gate(gate):
            region.append(gate)
        else:
            flush()
    flush()
    return stats


def t_depth_estimate(circuit: QuantumCircuit) -> int:
    """Sum of per-region T-layer counts (matroid-partition bound)."""
    return sum(layers for _, _, layers in region_statistics(circuit))


def t_count_before_after(circuit: QuantumCircuit) -> Tuple[int, int]:
    """(original T-count, T-count after tpar_optimize)."""
    return circuit.t_count(), tpar_optimize(circuit).t_count()

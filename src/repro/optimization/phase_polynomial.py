"""Phase-polynomial analysis of {CNOT, X, phase} subcircuits.

A circuit over {CNOT, X, T, T', S, S', Z, Rz} computes an affine-linear
map of the inputs while accumulating phases e^{i theta f(x)} on affine
functions ``f`` of the inputs — the *phase polynomial*.  Two phase
gates whose wire carries the same affine function at their positions
can be merged, reducing T-count ("phase folding", the core of T-par
[69]).

:class:`PhaseRegion` extracts the polynomial of such a region;
:func:`fold_region` rebuilds the region with merged phases, placing
each merged rotation at the first position where its parity occurs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate

#: Gates a phase region may contain.
LINEAR_GATES = ("cx", "x", "swap")
#: phase-gate name -> multiple of pi/4
PHASE_STEPS = {"t": 1, "s": 2, "z": 4, "sdg": 6, "tdg": 7}
#: multiple of pi/4 (mod 8) -> canonical gate sequence
STEP_GATES = {
    0: (),
    1: ("t",),
    2: ("s",),
    3: ("s", "t"),
    4: ("z",),
    5: ("z", "t"),
    6: ("sdg",),
    7: ("tdg",),
}


def is_region_gate(gate: Gate) -> bool:
    """Return whether ``gate`` belongs in a phase-polynomial region.

    Regions are maximal {CNOT, X, SWAP, phase} blocks; anything else
    (Hadamard, measurement, ...) terminates the region.
    """
    if gate.name in LINEAR_GATES or gate.name in PHASE_STEPS:
        return True
    return gate.name in ("rz", "p") and not gate.controls


@dataclass
class Parity:
    """An affine function of the region inputs: mask over input wires
    plus a complement bit."""

    mask: int
    complement: bool

    def key(self) -> Tuple[int, bool]:
        return (self.mask, self.complement)


@dataclass
class PhaseTerm:
    """Accumulated phase on one linear function."""

    mask: int               # linear part (complement folded into angle)
    steps: int = 0          # multiple of pi/4 (mod 8)
    angle: float = 0.0      # arbitrary residual angle (from rz/p)
    first_index: int = -1   # earliest gate index where the parity occurs

    def is_trivial(self) -> bool:
        return self.steps % 8 == 0 and abs(self.angle) < 1e-12


class PhaseRegion:
    """Phase polynomial of a {CNOT, X, phase} gate list."""

    def __init__(self, num_qubits: int, gates: List[Gate]):
        self.num_qubits = num_qubits
        self.gates = gates
        self.terms: Dict[int, PhaseTerm] = {}
        self._analyze()

    def _analyze(self) -> None:
        # wire i carries parity e_i initially, complement bit separate
        masks = [1 << i for i in range(self.num_qubits)]
        flips = [False] * self.num_qubits
        for index, gate in enumerate(self.gates):
            name = gate.name
            if name == "cx":
                c, t = gate.controls[0], gate.targets[0]
                masks[t] ^= masks[c]
                flips[t] ^= flips[c]
            elif name == "x":
                flips[gate.targets[0]] ^= True
            elif name == "swap":
                a, b = gate.targets
                masks[a], masks[b] = masks[b], masks[a]
                flips[a], flips[b] = flips[b], flips[a]
            elif name in PHASE_STEPS or name in ("rz", "p"):
                qubit = gate.targets[0]
                mask = masks[qubit]
                if name in PHASE_STEPS:
                    steps = PHASE_STEPS[name]
                    angle = 0.0
                else:
                    steps = 0
                    angle = gate.params[0]
                    if name == "rz":
                        # rz(theta) = e^{-i theta/2} p(theta); global
                        # phase is dropped
                        angle = gate.params[0]
                if flips[qubit]:
                    # phase on NOT(f): e^{i theta (1-f)}; global phase
                    # e^{i theta} dropped, sign of f flips
                    steps = (-steps) % 8
                    angle = -angle
                term = self.terms.get(mask)
                if term is None:
                    term = PhaseTerm(mask, first_index=index)
                    self.terms[mask] = term
                term.steps = (term.steps + steps) % 8
                term.angle += angle
            else:
                raise ValueError(f"gate {name!r} not allowed in region")
        self.final_masks = masks
        self.final_flips = flips

    def t_count(self) -> int:
        """T-gates needed after folding: one per odd-step parity."""
        return sum(1 for term in self.terms.values() if term.steps % 2 == 1)

    def nontrivial_terms(self) -> List[PhaseTerm]:
        return [t for t in self.terms.values() if not t.is_trivial()]


def fold_region(num_qubits: int, gates: List[Gate]) -> List[Gate]:
    """Rebuild a region with merged phase gates.

    The linear structure (CNOT/X/SWAP gates) is kept verbatim; each
    merged phase term is emitted at the first index where its parity
    appears on some wire.
    """
    region = PhaseRegion(num_qubits, gates)
    pending: Dict[int, PhaseTerm] = {
        term.mask: term for term in region.nontrivial_terms()
    }

    masks = [1 << i for i in range(num_qubits)]
    flips = [False] * num_qubits
    out: List[Gate] = []

    def emit_if_pending(qubit: int) -> None:
        mask = masks[qubit]
        term = pending.pop(mask, None)
        if term is None:
            return
        steps = term.steps % 8
        angle = term.angle
        if flips[qubit]:
            steps = (-steps) % 8
            angle = -angle
        for name in STEP_GATES[steps]:
            out.append(Gate(name, (qubit,)))
        if abs(angle) > 1e-12:
            angle = math.remainder(angle, 2 * math.pi)
            if abs(angle) > 1e-12:
                out.append(Gate("p", (qubit,), params=(angle,)))

    for qubit in range(num_qubits):
        emit_if_pending(qubit)
    for gate in gates:
        name = gate.name
        if name in LINEAR_GATES:
            out.append(gate)
            if name == "cx":
                c, t = gate.controls[0], gate.targets[0]
                masks[t] ^= masks[c]
                flips[t] ^= flips[c]
                emit_if_pending(t)
            elif name == "x":
                flips[gate.targets[0]] ^= True
            elif name == "swap":
                a, b = gate.targets
                masks[a], masks[b] = masks[b], masks[a]
                flips[a], flips[b] = flips[b], flips[a]
        # phase gates are dropped; their contribution is in `pending`
    if pending:
        raise AssertionError("unplaced phase terms after folding")
    return out


def greedy_t_layers(terms: List[int], num_vars: int) -> List[List[int]]:
    """Partition parity masks into layers of linearly independent sets.

    This is the matroid-partitioning step of T-par [69] solved greedily:
    each layer can be executed as one T-stage (after a suitable CNOT
    network), so ``len(layers)`` estimates the achievable T-depth.
    """
    layers: List[List[int]] = []
    basis_per_layer: List[List[int]] = []
    for mask in terms:
        placed = False
        for layer, basis in zip(layers, basis_per_layer):
            if len(layer) >= num_vars:
                continue
            if _independent(mask, basis):
                layer.append(mask)
                _insert(mask, basis)
                placed = True
                break
        if not placed:
            layers.append([mask])
            basis_per_layer.append([])
            _insert(mask, basis_per_layer[-1])
    return layers


def _independent(mask: int, basis: List[int]) -> bool:
    value = mask
    for vec in basis:
        value = min(value, value ^ vec)
    return value != 0


def _insert(mask: int, basis: List[int]) -> None:
    value = mask
    for vec in basis:
        value = min(value, value ^ vec)
    if value:
        basis.append(value)
        basis.sort(reverse=True)

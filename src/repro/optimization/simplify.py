"""Circuit simplification — the ``revsimp`` command.

Two levels:

* :func:`simplify_reversible` — peephole rules on MCT networks:
  adjacent equal gates cancel (MCTs are involutions), and gates may
  slide past each other when they commute (disjoint target/control
  interaction), enabling more cancellations; NOT-pair absorption into
  control polarities.
* :func:`cancel_adjacent_gates` — on quantum circuits: adjacent
  inverse pairs (h-h, x-x, t-tdg, cx-cx, ...) cancel and adjacent
  rotations on the same wire merge, iterated to a fixpoint with
  commutation-aware adjacency (gates on disjoint qubits are
  transparent).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.circuit import QuantumCircuit
from ..core.gates import ADJOINT_NAME, Gate, SELF_INVERSE
from ..synthesis.reversible import MctGate, ReversibleCircuit


# ----------------------------------------------------------------------
# reversible (MCT) simplification
# ----------------------------------------------------------------------
def _mct_commute(a: MctGate, b: MctGate) -> bool:
    """Sufficient commutation condition for two MCT gates.

    They commute if neither gate's target is a control of the other
    (same-target gates always commute; identical gates trivially)."""
    if a.target == b.target:
        return True
    if a.target in b.controls:
        return False
    if b.target in a.controls:
        return False
    return True


def _absorb_not(not_gate: MctGate, gate: MctGate) -> Optional[MctGate]:
    """X(line) conjugation: flips the polarity of a matching control."""
    line = not_gate.target
    if line == gate.target or line not in gate.controls:
        return None
    polarity = tuple(
        not p if ctl == line else p
        for ctl, p in zip(gate.controls, gate.polarity)
    )
    return MctGate(gate.target, gate.controls, polarity)


def simplify_reversible(
    circuit: ReversibleCircuit, max_rounds: int = 10
) -> ReversibleCircuit:
    """Cancel/merge MCT gates; preserves the circuit's permutation.

    This is the shell's ``revsimp`` command: equal gates that can
    reach each other through commuting neighbors cancel pairwise, and
    X-g-X sandwiches absorb into a polarity flip of g.

    Args:
        circuit: the MCT cascade to simplify.
        max_rounds: fixpoint iteration bound.

    Returns:
        A new cascade realizing the same permutation with at most as
        many gates.
    """
    gates = list(circuit.gates)

    def cancel_once() -> bool:
        """Remove one equal pair reachable through commuting gates."""
        for i in range(len(gates)):
            for j in range(i + 1, len(gates)):
                if gates[i] == gates[j]:
                    del gates[j]
                    del gates[i]
                    return True
                if not _mct_commute(gates[i], gates[j]):
                    break
        return False

    def absorb_once() -> bool:
        """Rewrite one X-g-X sandwich into g with flipped polarity."""
        for i in range(len(gates) - 2):
            if gates[i].num_controls == 0 and gates[i] == gates[i + 2]:
                absorbed = _absorb_not(gates[i], gates[i + 1])
                if absorbed is not None:
                    gates[i:i + 3] = [absorbed]
                    return True
        return False

    for _ in range(max_rounds):
        changed = False
        while cancel_once():
            changed = True
        while absorb_once():
            changed = True
        if not changed:
            break
    out = ReversibleCircuit(circuit.num_lines, circuit.name + "_simp")
    out.extend(gates)
    return out


# ----------------------------------------------------------------------
# quantum gate cancellation
# ----------------------------------------------------------------------
def _inverse_pair(a: Gate, b: Gate) -> bool:
    if a.qubits != b.qubits or a.cbits or b.cbits:
        return False
    if a.name == b.name and a.name in SELF_INVERSE and not a.params:
        return a.targets == b.targets and a.controls == b.controls
    if ADJOINT_NAME.get(a.name) == b.name:
        return a.targets == b.targets and a.controls == b.controls
    if (
        a.name == b.name
        and a.base_name in ("rx", "ry", "rz", "p")
        and abs(a.params[0] + b.params[0]) < 1e-12
    ):
        return True
    return False


def _mergeable_rotation(a: Gate, b: Gate) -> Optional[Gate]:
    if (
        a.name == b.name
        and a.base_name in ("rx", "ry", "rz", "p")
        and a.targets == b.targets
        and a.controls == b.controls
    ):
        angle = a.params[0] + b.params[0]
        if abs(angle) < 1e-12:
            return Gate("id", a.targets)
        return Gate(a.name, a.targets, a.controls, (angle,))
    return None


def _gates_commute(a: Gate, b: Gate) -> bool:
    """Conservative disjointness-based commutation."""
    return not set(a.qubits) & set(b.qubits)


def cancel_adjacent_gates(
    circuit: QuantumCircuit, max_rounds: int = 10
) -> QuantumCircuit:
    """Cancel inverse pairs and merge rotations to a fixpoint.

    Args:
        circuit: the quantum circuit to clean up.
        max_rounds: fixpoint iteration bound.

    Returns:
        A new, unitary-equivalent circuit with at most as many gates
        (identity gates dropped, adjacent inverses removed, adjacent
        same-axis rotations merged).
    """
    # stack-based pass: each incoming gate scans backwards over
    # committed gates, skipping qubit-disjoint ones, until it finds an
    # inverse partner (cancel), a mergeable rotation (merge), or a
    # blocking gate (commit).  Nested pairs (h x x h) resolve in one
    # pass; pairs exposed by mid-stack deletions need another round, so
    # iterate to a fixpoint.
    gates = [g for g in circuit.gates if g.name != "id"]
    for _ in range(max_rounds):
        out: List[Gate] = []
        changed = False
        for incoming in gates:
            if incoming.name == "barrier" or incoming.is_measurement:
                out.append(incoming)
                continue
            placed = False
            for j in range(len(out) - 1, -1, -1):
                other = out[j]
                if other.name == "barrier" or other.is_measurement:
                    break
                if _inverse_pair(other, incoming):
                    del out[j]
                    placed = True
                    changed = True
                    break
                merged = _mergeable_rotation(other, incoming)
                if merged is not None:
                    if merged.name == "id":
                        del out[j]
                    else:
                        out[j] = merged
                    placed = True
                    changed = True
                    break
                if not _gates_commute(other, incoming):
                    break
            if not placed:
                out.append(incoming)
        gates = out
        if not changed:
            break
    out = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, circuit.name + "_simp"
    )
    out.extend(g for g in gates if g.name != "id")
    return out

"""Template-based MCT network optimization.

The classical RevKit/Maslov–Dueck–Miller template rules [50] on top of
plain cancellation (:func:`repro.optimization.simplify.simplify_reversible`):

* **duplicate rule** — equal adjacent gates cancel;
* **control-merge rule** — gates with the same target whose control
  sets differ by a single extra control merge into one gate with that
  control negated:  ``T(C + c, t) . T(C, t) = T(C + !c, t)``;
* **polarity rule** — gates identical except for one control polarity
  merge into one gate without that control:
  ``T(C + c, t) . T(C + !c, t) = T(C, t)``;
* **not-absorption** — X(c) T(..c..) X(c) flips the polarity of c.

Rules are applied through commutation-aware adjacency (gates may slide
past each other when neither target is the other's control), iterated
to a fixpoint.  Every rewrite is semantics-preserving; the tests check
the permutation after every pass.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..synthesis.reversible import MctGate, ReversibleCircuit
from .simplify import _absorb_not, _mct_commute


def _merge_pair(a: MctGate, b: MctGate) -> Optional[MctGate]:
    """Apply the control-merge or polarity rule to two gates."""
    if a.target != b.target:
        return None
    mask_a, mask_b = a.control_mask(), b.control_mask()
    pol_a, pol_b = a.polarity_mask(), b.polarity_mask()
    if mask_a == mask_b:
        if a == b:
            # duplicate: handled by cancellation, not merging
            return None
        diff = pol_a ^ pol_b
        if bin(diff).count("1") == 1:
            # polarity rule: drop the differing control
            keep = mask_a & ~diff
            return MctGate.from_masks(a.target, keep, pol_a & keep)
        return None
    diff = mask_a ^ mask_b
    if bin(diff).count("1") != 1:
        return None
    wide, wide_pol, narrow_pol = (
        (a, pol_a, pol_b) if mask_a & diff else (b, pol_b, pol_a)
    )
    narrow_mask = wide.control_mask() & ~diff
    # shared controls must agree in polarity
    if (wide_pol & narrow_mask) != (narrow_pol & narrow_mask):
        return None
    # control-merge rule: negate the extra control
    new_pol = (wide_pol ^ diff) & wide.control_mask()
    return MctGate.from_masks(wide.target, wide.control_mask(), new_pol)


def template_optimize(
    circuit: ReversibleCircuit, max_rounds: int = 20
) -> ReversibleCircuit:
    """Apply the template rewriting rules to a fixpoint.

    Args:
        circuit: the MCT cascade to rewrite.
        max_rounds: fixpoint iteration bound.

    Returns:
        A new cascade realizing the same permutation, never larger
        than the input.
    """
    gates = list(circuit.gates)
    for _ in range(max_rounds):
        changed = (
            _cancel_pass(gates)
            or _merge_pass(gates)
            or _absorb_pass(gates)
        )
        if not changed:
            break
    out = ReversibleCircuit(circuit.num_lines, circuit.name + "_templ")
    out.extend(gates)
    return out


def _find_partner(gates: List[MctGate], index: int):
    """Indices reachable from gates[index] through commuting gates."""
    for j in range(index + 1, len(gates)):
        yield j
        if not _mct_commute(gates[index], gates[j]):
            return


def _cancel_pass(gates: List[MctGate]) -> bool:
    for i in range(len(gates)):
        for j in _find_partner(gates, i):
            if gates[i] == gates[j]:
                del gates[j]
                del gates[i]
                return True
    return False


def _merge_pass(gates: List[MctGate]) -> bool:
    for i in range(len(gates)):
        for j in _find_partner(gates, i):
            merged = _merge_pair(gates[i], gates[j])
            if merged is not None:
                # gate i slides forward past the (commuting) gates in
                # between, so the merged gate lives at position j-1
                del gates[j]
                del gates[i]
                gates.insert(j - 1, merged)
                return True
    return False


def _absorb_pass(gates: List[MctGate]) -> bool:
    for i in range(len(gates) - 2):
        if gates[i].num_controls == 0 and gates[i] == gates[i + 2]:
            absorbed = _absorb_not(gates[i], gates[i + 1])
            if absorbed is not None:
                gates[i:i + 3] = [absorbed]
                return True
    return False


def optimization_ladder(
    circuit: ReversibleCircuit,
) -> List[Tuple[str, int]]:
    """Gate counts along simplify -> templates (diagnostic helper)."""
    from .simplify import simplify_reversible

    stages = [("input", len(circuit))]
    simplified = simplify_reversible(circuit)
    stages.append(("revsimp", len(simplified)))
    templated = template_optimize(simplified)
    stages.append(("templates", len(templated)))
    return stages

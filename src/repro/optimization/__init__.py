"""Optimization passes: revsimp (cancellation) and tpar (phase folding)."""

from .phase_polynomial import (
    PhaseRegion,
    PhaseTerm,
    fold_region,
    greedy_t_layers,
    is_region_gate,
)
from .simplify import cancel_adjacent_gates, simplify_reversible
from .templates import optimization_ladder, template_optimize
from .tpar import (
    region_statistics,
    t_count_before_after,
    t_depth_estimate,
    tpar_optimize,
)

__all__ = [
    "PhaseRegion",
    "PhaseTerm",
    "fold_region",
    "greedy_t_layers",
    "is_region_gate",
    "cancel_adjacent_gates",
    "simplify_reversible",
    "optimization_ladder",
    "template_optimize",
    "region_statistics",
    "t_count_before_after",
    "t_depth_estimate",
    "tpar_optimize",
]

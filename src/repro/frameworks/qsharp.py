"""Q# code generation — the RevKit/Q# interop of Sec. VIII.

In the paper's second tool flow RevKit acts as a *pre-processor*: it
synthesizes the permutation oracle and emits it as native Q# source
(Fig. 10), which the Q# compiler then builds against the hidden-shift
driver (Fig. 9).  The Q# toolchain itself cannot run in this
environment, so this module

* generates the same artifacts as text —
  :func:`permutation_oracle_operation` mirrors Fig. 10's
  ``PermutationOracle`` operation (H/T/T'/CNOT body, ``adjoint auto``)
  and :func:`hidden_shift_program` the full two-namespace program; and
* keeps the source of truth executable — every generated operation
  carries its :class:`~repro.core.circuit.QuantumCircuit`, and
  :func:`parse_operation_body` re-parses emitted Q# back into a
  circuit so tests can verify text == semantics.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..boolean.permutation import BitPermutation
from ..core.circuit import QuantumCircuit
from ..emit.base import EmitterError
from ..pipeline import Pipeline
from ..synthesis.reversible import ReversibleCircuit

_QSHARP_NAMES = {
    "h": "H",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "t": "T",
    "cx": "CNOT",
    "cz": "CZ",
    "ccx": "CCNOT",
    "swap": "SWAP",
}
_ADJOINT_NAMES = {"sdg": "S", "tdg": "T"}


class QSharpError(EmitterError):
    """Raised for unexportable gates or malformed generated code.

    Subclasses :class:`repro.emit.EmitterError` (itself a
    ``ValueError``) so registry dispatch — including
    :meth:`repro.compiler.CompilationResult.emit` — uniformly
    translates Q# backend failures into :class:`EmissionError`.
    """


@dataclass
class QSharpOperation:
    """Generated Q# operation together with its executable circuit."""

    name: str
    code: str
    circuit: QuantumCircuit


def gate_to_qsharp(gate) -> str:
    """One Q# statement for a core gate."""
    if gate.name in _ADJOINT_NAMES:
        base = _ADJOINT_NAMES[gate.name]
        args = ", ".join(f"qubits[{q}]" for q in gate.qubits)
        return f"(Adjoint {base})({args});"
    name = _QSHARP_NAMES.get(gate.name)
    if name is None:
        raise QSharpError(f"gate {gate.name!r} has no Q# primitive form")
    args = ", ".join(f"qubits[{q}]" for q in gate.qubits)
    return f"{name}({args});"


def _operation_from_circuit(
    name: str,
    circuit: QuantumCircuit,
    namespace: str = "Repro.Quantum.PermOracle",
) -> QSharpOperation:
    """Emit a circuit as a self-adjointable Q# operation (Fig. 10 style).

    Internal: dispatches the text generation through the ``qsharp``
    backend of the :mod:`repro.emit` registry and bundles the result
    with the executable circuit.
    """
    from .. import emit

    code = emit.get("qsharp").emit(circuit, name=name, namespace=namespace)
    return QSharpOperation(name, code, circuit.copy())


_OPERATION_SHIM_WARNED = False


def operation_from_circuit(
    name: str,
    circuit: QuantumCircuit,
    namespace: str = "Repro.Quantum.PermOracle",
) -> QSharpOperation:
    """Emit a circuit as a self-adjointable Q# operation (Fig. 10 style).

    .. deprecated:: 1.1
        The text generation lives in the ``qsharp`` backend of the
        :mod:`repro.emit` registry
        (``repro.emit.emit(circuit, "qsharp", name=...)``); this shim
        forwards there and warns once per process.

    Args:
        name: the Q# operation name to emit.
        circuit: the compiled circuit to render.
        namespace: the Q# namespace wrapping the operation.

    Returns:
        The generated operation with its executable circuit attached.
    """
    global _OPERATION_SHIM_WARNED
    if not _OPERATION_SHIM_WARNED:
        _OPERATION_SHIM_WARNED = True
        warnings.warn(
            "frameworks.qsharp.operation_from_circuit is deprecated; "
            "use repro.emit.emit(circuit, 'qsharp', name=...) (the "
            "registry keeps the same Fig. 10 text)",
            DeprecationWarning,
            stacklevel=2,
        )
    return _operation_from_circuit(name, circuit, namespace=namespace)


def _resolve_target(target, synth, entry_name: str):
    """Resolve an entry point's target, honoring the deprecated synth=.

    Shared by :func:`permutation_oracle_operation` and
    :func:`hidden_shift_program`: defaults to the ``qsharp`` preset
    and folds a legacy ``synth=`` callable into the target's
    ``synthesis`` field with a :class:`DeprecationWarning` naming the
    calling entry point.
    """
    from .. import compiler

    if target is None:
        target = compiler.targets.QSHARP
    else:
        target = compiler.get_target(target)
    if synth is not None:
        warnings.warn(
            f"{entry_name}(synth=...) is deprecated; pass "
            "target=targets.QSHARP.with_(synthesis=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        target = target.with_(synthesis=synth)
    return target


def permutation_oracle_operation(
    permutation: Union[BitPermutation, Sequence[int]],
    synth: Optional[Callable[[BitPermutation], ReversibleCircuit]] = None,
    name: str = "PermutationOracle",
    pipeline: Optional[Pipeline] = None,
    target=None,
) -> QSharpOperation:
    """RevKit-as-preprocessor: synthesize ``pi`` and emit Q# (Fig. 10).

    Dispatches through :func:`repro.compile` with the ``qsharp``
    target — chosen synthesis (default transformation-based [43]),
    ``revsimp``, Clifford+T mapping [42], gate cancellation — then
    generates the Q# text from the compiled circuit.  Repeated calls
    for the same permutation replay the pass manager's cached results.

    Args:
        permutation: the oracle permutation ``pi``.
        synth: synthesis back-end (name or callable).

            .. deprecated:: 1.0
                Pass ``target=targets.QSHARP.with_(synthesis=...)``
                instead; ``synth=`` will be removed.
        name: Q# operation name to emit.
        pipeline: pass-manager runner to execute on (fresh one with
            the shared cache by default).
        target: a :class:`repro.compiler.Target` (or registered name)
            selecting synthesis and optimization; defaults to the
            ``qsharp`` preset.

    Returns:
        The generated operation with its executable circuit attached.
    """
    from .. import compiler

    if not isinstance(permutation, BitPermutation):
        permutation = BitPermutation(list(permutation))
    target = _resolve_target(target, synth, "permutation_oracle_operation")
    result = compiler.compile(permutation, target=target, pipeline=pipeline)
    return _operation_from_circuit(name, result.circuit)


def hidden_shift_program(
    permutation: Union[BitPermutation, Sequence[int]],
    num_vars: int,
    synth: Optional[Callable[[BitPermutation], ReversibleCircuit]] = None,
    target=None,
) -> str:
    """The full two-namespace Q# program of Figs. 9 and 10.

    ``synth=`` is deprecated like on
    :func:`permutation_oracle_operation`; pass
    ``target=targets.QSHARP.with_(synthesis=...)`` instead.
    """
    target = _resolve_target(target, synth, "hidden_shift_program")
    oracle = permutation_oracle_operation(permutation, target=target)
    driver = f"""namespace Repro.Quantum.HiddenShift {{
    // basic operations: Hadamard, CNOT, etc
    open Microsoft.Quantum.Primitive;
    // useful lib functions and combinators
    open Microsoft.Quantum.Canon;
    // permutation defining the instance
    open Repro.Quantum.PermOracle;

    operation HiddenShift
        (Ufstar : (Qubit[] => ()),
         Ug : (Qubit[] => ()), n : Int) :
        Result[] {{
        body {{
            mutable resultArray = new Result[n];
            using (qubits = Qubit[n]) {{
                ApplyToEach(H, qubits);
                Ug(qubits);
                ApplyToEach(H, qubits);
                Ufstar(qubits);
                ApplyToEach(H, qubits);
                for (idx in 0..(n-1)) {{
                    set resultArray[idx] = MResetZ(qubits[idx]);
                }}
            }}
            Message($"result: {{resultArray}}");
            return resultArray;
        }}
    }}

    operation BentFunctionImpl
        (n : Int, qs : Qubit[]) : () {{
        body {{
            let xs = qs[0..(n-1)];
            let ys = qs[n..(2*n-1)];
            (Adjoint PermutationOracle)(ys);
            for (idx in 0..(n-1)) {{
                (Controlled Z)([xs[idx]], ys[idx]);
            }}
            PermutationOracle(ys);
        }}
    }}

    function BentFunction
        (n : Int) : (Qubit[] => ()) {{
        return BentFunctionImpl(n, _);
    }}
}}

{oracle.code}"""
    return driver


# ----------------------------------------------------------------------
# structural validation / re-parsing
# ----------------------------------------------------------------------
_STMT_RE = re.compile(
    r"^(?:\(Adjoint\s+(?P<adj>\w+)\)|(?P<name>\w+))"
    r"\((?P<args>[^)]*)\);$"
)
_INDEX_RE = re.compile(r"qubits\[(\d+)\]")


def validate_program(code: str) -> bool:
    """Structural checks: balanced braces and namespace/operation heads."""
    if code.count("{") != code.count("}"):
        return False
    if "namespace" not in code or "operation" not in code:
        return False
    return True


def parse_operation_body(code: str, num_qubits: int) -> QuantumCircuit:
    """Parse the gate statements of a generated operation back into a
    circuit (supports the primitive set :func:`gate_to_qsharp` emits)."""
    inverse_names = {v: k for k, v in _QSHARP_NAMES.items()}
    circuit = QuantumCircuit(num_qubits)
    for raw in code.splitlines():
        line = raw.strip()
        match = _STMT_RE.match(line)
        if not match:
            continue
        qubits = [int(i) for i in _INDEX_RE.findall(match.group("args"))]
        if match.group("adj"):
            base = match.group("adj")
            name = {"S": "sdg", "T": "tdg"}.get(base)
            if name is None:
                raise QSharpError(f"unsupported adjoint {base!r}")
            circuit._add(name, (qubits[0],))
            continue
        name = inverse_names.get(match.group("name"))
        if name is None:
            continue  # non-gate statement (Message, set, ...)
        if name in ("cx", "cz"):
            circuit._add(name, (qubits[1],), (qubits[0],))
        elif name == "ccx":
            circuit._add(name, (qubits[2],), (qubits[0], qubits[1]))
        elif name == "swap":
            circuit._add(name, tuple(qubits))
        else:
            circuit._add(name, (qubits[0],))
    return circuit

"""Meta-contexts: Compute/Uncompute, Dagger, Control.

The high-level syntactic constructs of the paper's Figs. 4 and 7:

* ``with Compute(eng): ...`` records a block; ``Uncompute(eng)``
  appends its adjoint (used for the H / X / oracle sandwich of the
  hidden shift circuits);
* ``with Dagger(eng): ...`` emits the adjoint of a block (used to
  realize pi^{-1} from a circuit for pi);
* ``with Control(eng, qubits): ...`` conditions a block on qubits.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ...core.gates import Gate
from .engine import EngineError, MainEngine, Qubit


class Compute:
    """Record a block for later uncomputation."""

    def __init__(self, engine: MainEngine):
        self.engine = engine

    def __enter__(self) -> "Compute":
        self.engine.push_frame("compute")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        gates = self.engine.pop_frame("compute")
        if exc_type is None:
            self.engine.replay(gates)
            self.engine.set_last_compute(gates)


def Uncompute(engine: MainEngine) -> None:
    """Append the adjoint of the most recent Compute block.

    Recorded gates already carry any Control-context controls from
    recording time, so they are replayed verbatim (inverted) rather
    than re-emitted through the control machinery.
    """
    gates = engine.take_last_compute()
    engine.replay([gate.dagger() for gate in reversed(gates)])


class Dagger:
    """Emit the adjoint of the recorded block."""

    def __init__(self, engine: MainEngine):
        self.engine = engine

    def __enter__(self) -> "Dagger":
        self.engine.push_frame("dagger")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        gates = self.engine.pop_frame("dagger")
        if exc_type is None:
            for gate in reversed(gates):
                if self.engine._frames:
                    self.engine._frames[-1].gates.append(gate.dagger())
                else:
                    self.engine._append(gate.dagger())


class Control:
    """Condition the recorded block on control qubits."""

    def __init__(self, engine: MainEngine, qubits: Union[Qubit, Sequence[Qubit]]):
        self.engine = engine
        if isinstance(qubits, Qubit):
            qubits = [qubits]
        self.controls = [q.index for q in qubits]

    def __enter__(self) -> "Control":
        self.engine.push_controls(self.controls)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.engine.pop_controls(len(self.controls))

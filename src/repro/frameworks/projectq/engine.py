"""MainEngine — the ProjectQ-style command engine.

Mirrors the programming model of the paper's Figs. 4 and 7: qubits are
allocated from a :class:`MainEngine`, gate objects are applied with the
``|`` operator, meta-contexts (Compute/Uncompute/Dagger/Control)
transform the command stream, and ``flush()`` ships the accumulated
circuit to a backend (simulator, noisy chip model, resource counter).

After a flush, measured qubits can be read with ``int(qubit)`` /
``bool(qubit)`` exactly as in ProjectQ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...core.circuit import QuantumCircuit
from ...core.gates import Gate
from .backends import Backend, Simulator


class EngineError(RuntimeError):
    """Raised for invalid engine usage."""


class Qubit:
    """Handle to one engine wire; readable after measurement + flush."""

    def __init__(self, engine: "MainEngine", index: int):
        self.engine = engine
        self.index = index
        self._value: Optional[int] = None

    def __int__(self) -> int:
        if self._value is None:
            raise EngineError(
                f"qubit {self.index} has no measured value; call "
                "Measure and eng.flush() first"
            )
        return self._value

    def __bool__(self) -> bool:
        return bool(int(self))

    def __repr__(self) -> str:
        state = "?" if self._value is None else str(self._value)
        return f"Qubit({self.index}={state})"


class _Frame:
    """A recording frame for meta-contexts."""

    def __init__(self, kind: str):
        self.kind = kind
        self.gates: List[Gate] = []


class MainEngine:
    """Collects gate commands and executes them on a backend."""

    def __init__(self, backend: Optional[Backend] = None, seed: Optional[int] = None):
        self.backend: Backend = backend if backend is not None else Simulator(seed=seed)
        self.circuit = QuantumCircuit(0, 0, name="main")
        self.qubits: List[Qubit] = []
        self._frames: List[_Frame] = []
        self._last_compute: Optional[List[Gate]] = None
        self._control_qubits: List[int] = []
        self._measure_order: List[int] = []
        self._flushed = False

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate_qubit(self) -> Qubit:
        qubit = Qubit(self, len(self.qubits))
        self.qubits.append(qubit)
        self.circuit.num_qubits += 1
        return qubit

    def allocate_qureg(self, num_qubits: int) -> List[Qubit]:
        return [self.allocate_qubit() for _ in range(num_qubits)]

    # ------------------------------------------------------------------
    # command stream
    # ------------------------------------------------------------------
    def emit(self, gate: Gate) -> None:
        """Receive a gate, applying active Control context and routing
        it into the innermost recording frame (or the main circuit)."""
        if self._control_qubits and gate.is_unitary and gate.name != "barrier":
            gate = _add_controls(gate, tuple(self._control_qubits))
        if self._frames:
            self._frames[-1].gates.append(gate)
        else:
            self._append(gate)

    def _append(self, gate: Gate) -> None:
        if gate.is_measurement:
            qubit = gate.targets[0]
            self.circuit.num_clbits = max(
                self.circuit.num_clbits, qubit + 1
            )
            self.circuit.measure(qubit, qubit)
            self._measure_order.append(qubit)
        else:
            self.circuit.append(gate)

    # frame plumbing for the meta module -------------------------------
    def push_frame(self, kind: str) -> None:
        self._frames.append(_Frame(kind))

    def pop_frame(self, kind: str) -> List[Gate]:
        if not self._frames or self._frames[-1].kind != kind:
            raise EngineError(f"unbalanced meta sections (expected {kind})")
        return self._frames.pop().gates

    def replay(self, gates: Sequence[Gate]) -> None:
        """Emit recorded gates into the enclosing context."""
        for gate in gates:
            if self._frames:
                self._frames[-1].gates.append(gate)
            else:
                self._append(gate)

    def set_last_compute(self, gates: List[Gate]) -> None:
        self._last_compute = gates

    def take_last_compute(self) -> List[Gate]:
        if self._last_compute is None:
            raise EngineError("Uncompute without a preceding Compute block")
        gates = self._last_compute
        self._last_compute = None
        return gates

    def push_controls(self, qubits: Sequence[int]) -> None:
        self._control_qubits.extend(qubits)

    def pop_controls(self, count: int) -> None:
        del self._control_qubits[len(self._control_qubits) - count:]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Execute the accumulated circuit on the backend and load
        measurement results into the qubit handles."""
        if self._frames:
            raise EngineError("flush inside an open meta section")
        outcome = self.backend.execute(self.circuit)
        if outcome is not None:
            for qubit_index in self._measure_order:
                self.qubits[qubit_index]._value = (outcome >> qubit_index) & 1
        self._flushed = True

    def __enter__(self) -> "MainEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._flushed:
            self.flush()


def _add_controls(gate: Gate, new_controls) -> Gate:
    promote = {
        "x": "cx", "cx": "ccx", "ccx": "mcx", "mcx": "mcx",
        "z": "cz", "cz": "ccz", "ccz": "mcz", "mcz": "mcz",
        "y": "cy", "h": "ch", "rz": "crz", "p": "cp", "cp": "mcp",
        "mcp": "mcp", "swap": "cswap",
    }
    name = gate.name
    for _ in new_controls:
        if name not in promote:
            raise EngineError(f"cannot control gate {gate.name!r}")
        name = promote[name]
    return Gate(name, gate.targets, tuple(new_controls) + gate.controls, gate.params)

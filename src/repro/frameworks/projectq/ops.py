"""Gate objects with ProjectQ's ``Gate | qubits`` application syntax.

Provides the vocabulary used in the paper's listings: ``H``, ``X``,
``Z``, ``Measure``, ``All(H)``, ``CNOT``, plus the rest of the
Clifford+T set and rotations.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from ...core.gates import Gate
from .engine import EngineError, MainEngine, Qubit

Operand = Union[Qubit, Sequence[Qubit]]


def _qubit_list(operand: Operand) -> List[Qubit]:
    if isinstance(operand, Qubit):
        return [operand]
    out: List[Qubit] = []
    for item in operand:
        if isinstance(item, Qubit):
            out.append(item)
        else:  # nested register
            out.extend(_qubit_list(item))
    return out


def _engine_of(qubits: List[Qubit]) -> MainEngine:
    if not qubits:
        raise EngineError("gate applied to no qubits")
    engine = qubits[0].engine
    if any(q.engine is not engine for q in qubits):
        raise EngineError("qubits belong to different engines")
    return engine


class BasicGate:
    """A gate object applied with ``gate | qubits``."""

    def __init__(self, name: str, num_targets: int = 1, num_controls: int = 0,
                 params: Tuple[float, ...] = ()):
        self.name = name
        self.num_targets = num_targets
        self.num_controls = num_controls
        self.params = params

    def __or__(self, operand: Operand) -> None:
        qubits = _qubit_list(operand)
        engine = _engine_of(qubits)
        expected = self.num_targets + self.num_controls
        if len(qubits) != expected:
            raise EngineError(
                f"{self.name} expects {expected} qubits, got {len(qubits)}"
            )
        controls = tuple(q.index for q in qubits[: self.num_controls])
        targets = tuple(q.index for q in qubits[self.num_controls:])
        engine.emit(Gate(self.name, targets, controls, self.params))

    def __str__(self) -> str:
        return self.name.upper()


class _MeasureGate:
    """``Measure | qubit`` or ``Measure | qureg``."""

    def __or__(self, operand: Operand) -> None:
        qubits = _qubit_list(operand)
        engine = _engine_of(qubits)
        for qubit in qubits:
            engine.emit(Gate("measure", (qubit.index,), cbits=(qubit.index,)))

    def __str__(self) -> str:
        return "Measure"


class All:
    """``All(H) | qureg`` applies a one-qubit gate to every qubit."""

    def __init__(self, gate: BasicGate):
        if gate.num_targets != 1 or gate.num_controls != 0:
            raise EngineError("All() needs a single-qubit gate")
        self.gate = gate

    def __or__(self, operand: Operand) -> None:
        for qubit in _qubit_list(operand):
            self.gate | qubit


class Rz(BasicGate):
    def __init__(self, angle: float):
        super().__init__("rz", params=(float(angle),))


class Rx(BasicGate):
    def __init__(self, angle: float):
        super().__init__("rx", params=(float(angle),))


class Ry(BasicGate):
    def __init__(self, angle: float):
        super().__init__("ry", params=(float(angle),))


class Ph(BasicGate):
    """Phase gate diag(1, e^{i angle})."""

    def __init__(self, angle: float):
        super().__init__("p", params=(float(angle),))


H = BasicGate("h")
X = BasicGate("x")
Y = BasicGate("y")
Z = BasicGate("z")
S = BasicGate("s")
Sdag = BasicGate("sdg")
T = BasicGate("t")
Tdag = BasicGate("tdg")
NOT = X
CNOT = BasicGate("cx", num_targets=1, num_controls=1)
CX = CNOT
CZ = BasicGate("cz", num_targets=1, num_controls=1)
Swap = BasicGate("swap", num_targets=2)
Toffoli = BasicGate("ccx", num_targets=1, num_controls=2)
CCX = Toffoli
Measure = _MeasureGate()

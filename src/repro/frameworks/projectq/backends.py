"""Engine backends: simulator, noisy chip model, resource counter.

The paper's ProjectQ flow targets "the IBM Quantum Experience or a
local simulator"; here the chip is replaced by the calibrated noisy
simulator (see :mod:`repro.simulator.noise`), and a resource counter
rounds out the set, mirroring ProjectQ's backend portfolio (Sec. VI).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...core.circuit import QuantumCircuit
from ...engines.noise import NoiseModel
from ...simulator.noise import NoisyBackend
from ...simulator.resources import ResourceCounter, ResourceEstimate
from ...simulator.statevector import Statevector, StatevectorSimulator


class Backend:
    """Interface: consume a circuit, return one outcome (or None)."""

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        raise NotImplementedError


class Simulator(Backend):
    """Noiseless statevector backend (the 'local simulator').

    Executes through the in-place kernel layer of
    :mod:`repro.simulator.kernels`; ``fusion`` toggles the gate-fusion
    pre-pass (single-qubit run folding + diagonal merging).
    """

    def __init__(self, seed: Optional[int] = None, fusion: bool = True):
        self._engine = StatevectorSimulator(seed=seed, fusion=fusion)
        self.final_state: Optional[Statevector] = None
        self.last_counts: Dict[int, int] = {}

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        result = self._engine.run(circuit, shots=1)
        self.final_state = result.final_state
        self.last_counts = result.counts
        if result.counts:
            return next(iter(result.counts))
        return None

    def probabilities(self) -> Dict[int, float]:
        """Basis-state probabilities of the last flushed state."""
        if self.final_state is None:
            return {}
        probs = self.final_state.probabilities()
        return {
            basis: float(p) for basis, p in enumerate(probs) if p > 1e-12
        }


class IBMBackend(Backend):
    """Noisy shot-based backend standing in for the IBM QE chip.

    Runs ``shots`` executions under the calibrated noise model and
    reports the modal outcome (what one reads off the chip's
    histogram); the full histogram is kept in ``last_counts``.
    """

    def __init__(
        self,
        shots: int = 1024,
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
    ):
        self.shots = shots
        self._backend = NoisyBackend(
            noise_model or NoiseModel.ibm_qe_2018(), seed=seed
        )
        self.last_counts: Dict[int, int] = {}

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        result = self._backend.run(circuit, shots=self.shots)
        self.last_counts = result.counts
        if not result.counts:
            return None
        return max(result.counts, key=lambda k: result.counts[k])

    def histogram(self) -> Dict[int, float]:
        total = sum(self.last_counts.values()) or 1
        return {k: v / total for k, v in sorted(self.last_counts.items())}


class ResourceCounterBackend(Backend):
    """Counts resources instead of simulating; measurements read as 0."""

    def __init__(self) -> None:
        self.estimate: Optional[ResourceEstimate] = None

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        self.estimate = ResourceCounter().run(circuit)
        return 0


class CircuitCollector(Backend):
    """Backend that just hands back the built circuit (for exporters)."""

    def __init__(self) -> None:
        self.circuit: Optional[QuantumCircuit] = None

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        self.circuit = circuit.copy()
        return None

"""Compiler-chain backend: the full Fig. 2 flow behind the engine.

ProjectQ's "modular compiler design" (Sec. VI) chains compiler engines
between the programmer and the device.  :class:`CompilerBackend`
replicates that: circuits emitted by :class:`MainEngine` pass through

    revsimp-style cancellation -> Clifford+T mapping (rptm) ->
    T-par phase folding -> cancellation -> device routing

before reaching the actual execution backend, so the user's program is
automatically legal for a constrained chip.  The chain is the
:func:`repro.pipeline.flows.device` preset executed on the pass
manager, so repeated flushes of identical circuits replay cached pass
results.  Compilation statistics of the last flush are kept for
inspection.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ...core.circuit import QuantumCircuit
from ...core.statistics import CircuitStatistics, circuit_statistics
from ...mapping.routing import CouplingMap, RoutingResult
from ...pipeline import Pipeline
from .backends import Backend, Simulator


@dataclass
class CompilationReport:
    """What the chain did on the last flush."""

    source_stats: CircuitStatistics
    compiled_stats: CircuitStatistics
    swap_count: int = 0
    routed: bool = False

    def as_dict(self) -> Dict[str, int]:
        out = {
            f"source_{k}": v for k, v in self.source_stats.as_dict().items()
        }
        out.update(
            {
                f"compiled_{k}": v
                for k, v in self.compiled_stats.as_dict().items()
            }
        )
        out["swaps"] = self.swap_count
        return out


class CompilerBackend(Backend):
    """Backend decorator running the full compilation chain.

    Args:
        target: the execution backend (default: noiseless simulator).
        coupling: optional device topology; when given, the compiled
            circuit is routed onto it and measurements follow their
            logical qubits.
        optimize: run tpar + cancellation (on by default).

            .. deprecated:: 1.0
                Pass ``compile_target=targets.PROJECTQ.with_(
                optimization_level=...)`` instead; ``optimize=`` will
                be removed.
        pipeline: pass-manager runner shared across flushes (fresh one
            with the shared cache by default).
        compile_target: a :class:`repro.compiler.Target` (or
            registered name) selecting the compilation chain; defaults
            to the ``projectq`` preset, with ``coupling`` overlaid.
    """

    def __init__(
        self,
        target: Optional[Backend] = None,
        coupling: Optional[CouplingMap] = None,
        optimize: Optional[bool] = None,
        pipeline: Optional[Pipeline] = None,
        compile_target=None,
    ):
        from ... import compiler

        self.target = target if target is not None else Simulator()
        if optimize is not None:
            warnings.warn(
                "CompilerBackend(optimize=...) is deprecated; pass "
                "compile_target=targets.PROJECTQ.with_("
                "optimization_level=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if compile_target is None:
            compile_target = compiler.targets.PROJECTQ
        else:
            compile_target = compiler.get_target(compile_target)
        if coupling is not None:
            compile_target = compile_target.with_(coupling=coupling)
        if optimize is not None:
            compile_target = compile_target.with_(
                optimization_level=2 if optimize else 1
            )
        self.compile_target = compile_target
        self.coupling = compile_target.coupling
        self.optimize = compile_target.optimization_level >= 2
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self.report: Optional[CompilationReport] = None
        self.compiled_circuit: Optional[QuantumCircuit] = None
        self.routing: Optional[RoutingResult] = None

    def execute(self, circuit: QuantumCircuit) -> Optional[int]:
        compiled = self.compile(circuit)
        outcome = self.target.execute(compiled)
        if outcome is None or self.routing is None:
            return outcome
        # translate physical measurement bits back to logical qubits:
        # measure gates were emitted on logical clbits already, so the
        # outcome is logical — nothing to undo (clbits never move).
        return outcome

    def compile(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Run the device flow through ``repro.compile`` and report."""
        from ... import compiler

        result = compiler.compile(
            circuit, target=self.compile_target, pipeline=self.pipeline
        )
        work = result.circuit
        self.routing = result.routing
        self.compiled_circuit = work
        self.report = CompilationReport(
            source_stats=circuit_statistics(circuit),
            compiled_stats=circuit_statistics(work),
            swap_count=self.routing.swap_count if self.routing else 0,
            routed=self.coupling is not None,
        )
        return work

"""PhaseOracle and PermutationOracle — the RevKit interop.

These are the two statements through which the paper's ProjectQ
programs invoke RevKit (``projectq.libs.revkit`` in Fig. 4/7):

* ``PhaseOracle(f) | qubits`` compiles a Python predicate (or truth
  table) into the diagonal unitary
  ``U_f = sum_x (-1)^{f(x)} |x><x|`` via an ESOP cover — every cube
  becomes a (negatively/positively controlled) multi-controlled Z.
* ``PermutationOracle(pi, synth=...) | qubits`` compiles a permutation
  into a reversible circuit with the chosen synthesis algorithm
  (default: transformation-based synthesis [43], as in the paper) and
  emits it gate by gate, so Compute/Dagger contexts apply.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ...boolean.cube import Cube
from ...boolean.esop import minimize_esop
from ...boolean.expression import predicate_to_truth_table
from ...boolean.permutation import BitPermutation
from ...boolean.truth_table import TruthTable
from ...core.gates import Gate
from ...synthesis.reversible import ReversibleCircuit
from ...synthesis.transformation import transformation_based_synthesis
from .engine import EngineError, MainEngine, Qubit
from .ops import _engine_of, _qubit_list

FunctionSpec = Union[Callable, TruthTable]
SynthesisFn = Callable[[BitPermutation], ReversibleCircuit]


class PhaseOracle:
    """Diagonal phase oracle of a Boolean predicate."""

    def __init__(self, function: FunctionSpec, effort: str = "medium"):
        self.function = function
        self.effort = effort

    def _truth_table(self, num_vars: int) -> TruthTable:
        if isinstance(self.function, TruthTable):
            if self.function.num_vars != num_vars:
                raise EngineError(
                    f"oracle is over {self.function.num_vars} variables "
                    f"but {num_vars} qubits were supplied"
                )
            return self.function
        return predicate_to_truth_table(self.function, num_vars)

    def __or__(self, operand) -> None:
        qubits = _qubit_list(operand)
        engine = _engine_of(qubits)
        table = self._truth_table(len(qubits))
        cubes = minimize_esop(table, effort=self.effort)
        for gate in phase_oracle_gates(cubes, [q.index for q in qubits]):
            engine.emit(gate)


def phase_oracle_gates(cubes: Sequence[Cube], wires: Sequence[int]) -> List[Gate]:
    """Gates realizing ``prod_cubes (-1)^{cube(x)}`` on ``wires``.

    Cube variable i acts on ``wires[i]``.  Negative literals are
    X-conjugated; the constant cube contributes only a global phase
    and is realized as Z X Z X (= -I) on the first wire so simulation
    remains exactly faithful.
    """
    gates: List[Gate] = []
    for cube in cubes:
        literals = list(cube.literals())
        if not literals:
            wire = wires[0]
            gates.extend(
                [
                    Gate("z", (wire,)),
                    Gate("x", (wire,)),
                    Gate("z", (wire,)),
                    Gate("x", (wire,)),
                ]
            )
            continue
        negatives = [wires[var] for var, pos in literals if not pos]
        lines = [wires[var] for var, _pos in literals]
        for wire in negatives:
            gates.append(Gate("x", (wire,)))
        target = lines[-1]
        controls = tuple(lines[:-1])
        if not controls:
            gates.append(Gate("z", (target,)))
        elif len(controls) == 1:
            gates.append(Gate("cz", (target,), controls))
        elif len(controls) == 2:
            gates.append(Gate("ccz", (target,), controls))
        else:
            gates.append(Gate("mcz", (target,), controls))
        for wire in negatives:
            gates.append(Gate("x", (wire,)))
    return gates


class PermutationOracle:
    """Reversible-circuit oracle of a bit-vector permutation."""

    def __init__(
        self,
        permutation: Union[BitPermutation, Sequence[int]],
        synth: Optional[SynthesisFn] = None,
    ):
        if not isinstance(permutation, BitPermutation):
            permutation = BitPermutation(list(permutation))
        self.permutation = permutation
        self.synth = synth if synth is not None else transformation_based_synthesis

    def __or__(self, operand) -> None:
        qubits = _qubit_list(operand)
        engine = _engine_of(qubits)
        if len(qubits) != self.permutation.num_bits:
            raise EngineError(
                f"permutation over {self.permutation.num_bits} bits "
                f"applied to {len(qubits)} qubits"
            )
        circuit = self.synth(self.permutation)
        wires = [q.index for q in qubits]
        for gate in permutation_oracle_gates(circuit, wires):
            engine.emit(gate)


def permutation_oracle_gates(
    circuit: ReversibleCircuit, wires: Sequence[int]
) -> List[Gate]:
    """Lower an MCT network onto engine wires (negative controls via X).

    Raises if the synthesized circuit needs more lines than wires were
    supplied (ancilla-using synthesis results need explicit registers).
    """
    if circuit.num_lines > len(wires):
        raise EngineError(
            f"synthesized circuit uses {circuit.num_lines} lines but "
            f"only {len(wires)} qubits were supplied"
        )
    gates: List[Gate] = []
    for mct in circuit.gates:
        negatives = [
            wires[line]
            for line, positive in zip(mct.controls, mct.polarity)
            if not positive
        ]
        for wire in negatives:
            gates.append(Gate("x", (wire,)))
        controls = tuple(wires[line] for line in mct.controls)
        target = wires[mct.target]
        if not controls:
            gates.append(Gate("x", (target,)))
        elif len(controls) == 1:
            gates.append(Gate("cx", (target,), controls))
        elif len(controls) == 2:
            gates.append(Gate("ccx", (target,), controls))
        else:
            gates.append(Gate("mcx", (target,), controls))
        for wire in negatives:
            gates.append(Gate("x", (wire,)))
    return gates

"""Quantum programming frameworks: ProjectQ-style eDSL and Q# generator."""

from . import projectq, qsharp

__all__ = ["projectq", "qsharp"]

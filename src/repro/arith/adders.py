"""Reversible integer arithmetic — the Shor-workload substrate.

Sec. III of the paper: "Factoring needs constant modular arithmetic
[1], computing elliptic curve discrete logarithms ... requires generic
modular arithmetic [4]"; reference [3] builds factoring from
Toffoli-based modular multiplication.  This module provides those
combinational blocks as MCT networks, all verified by exhaustive
permutation simulation in the tests:

* :func:`cuccaro_adder` — the ripple-carry adder of Cuccaro et al.
  (CNOT/Toffoli only, one ancilla, in-place ``b <- a + b``);
* :func:`constant_adder` — ``x <- x + c (mod 2^n)`` built from MCTs
  (the carry-ripple construction of Häner et al. [3], simplified);
* :func:`controlled_increment` — controlled ``+1`` used by both;
* :func:`comparator` — writes ``a < b`` into a flag qubit;
* :func:`modular_constant_adder` — ``x <- x + c (mod N)`` via the
  add / compare / conditional-subtract ladder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..synthesis.reversible import MctGate, ReversibleCircuit


def _check_disjoint(*groups: Sequence[int]) -> None:
    flat = [line for group in groups for line in group]
    if len(set(flat)) != len(flat):
        raise ValueError("register lines must be disjoint")


def controlled_increment(
    num_lines: int,
    target: Sequence[int],
    controls: Sequence[int] = (),
) -> ReversibleCircuit:
    """``target <- target + 1 (mod 2^len)`` when all controls are 1.

    Classic MCT ripple: the highest bit flips iff all lower bits (and
    the controls) are 1, and so on downwards.
    """
    _check_disjoint(target, controls)
    circuit = ReversibleCircuit(num_lines, name="increment")
    bits = list(target)
    for top in range(len(bits) - 1, -1, -1):
        gate_controls = tuple(controls) + tuple(bits[:top])
        circuit.add_gate(bits[top], gate_controls)
    return circuit


def cuccaro_adder(
    num_bits: int,
    a_lines: Optional[Sequence[int]] = None,
    b_lines: Optional[Sequence[int]] = None,
    ancilla: Optional[int] = None,
    carry_out: Optional[int] = None,
) -> ReversibleCircuit:
    """In-place ripple-carry adder: ``|a>|b> -> |a>|a + b mod 2^n>``.

    Uses the Cuccaro–Draper–Kutin–Moulton MAJ/UMA construction with a
    single borrowed ancilla (must start |0>); optionally produces the
    carry-out on an extra line.

    Default layout: a on lines 0..n-1, b on n..2n-1, ancilla 2n,
    carry_out 2n+1 (if requested).
    """
    n = num_bits
    if a_lines is None:
        a_lines = list(range(n))
    if b_lines is None:
        b_lines = list(range(n, 2 * n))
    if ancilla is None:
        ancilla = 2 * n
    lines = [*a_lines, *b_lines, ancilla]
    if carry_out is not None:
        lines.append(carry_out)
    _check_disjoint(a_lines, b_lines, [ancilla], [] if carry_out is None else [carry_out])
    num_lines = max(lines) + 1
    circuit = ReversibleCircuit(num_lines, name="cuccaro")

    def maj(c: int, b: int, a: int) -> None:
        circuit.cnot(a, b)
        circuit.cnot(a, c)
        circuit.toffoli(c, b, a)

    def uma(c: int, b: int, a: int) -> None:
        circuit.toffoli(c, b, a)
        circuit.cnot(a, c)
        circuit.cnot(c, b)

    carry = ancilla
    chain = [(carry, b_lines[0], a_lines[0])]
    for i in range(1, n):
        chain.append((a_lines[i - 1], b_lines[i], a_lines[i]))
    for c, b, a in chain:
        maj(c, b, a)
    if carry_out is not None:
        circuit.cnot(a_lines[n - 1], carry_out)
    for c, b, a in reversed(chain):
        uma(c, b, a)
    return circuit


def constant_adder(
    num_bits: int,
    constant: int,
    target: Optional[Sequence[int]] = None,
    controls: Sequence[int] = (),
    num_lines: Optional[int] = None,
) -> ReversibleCircuit:
    """``x <- x + c (mod 2^n)``, optionally controlled.

    Built as a cascade of controlled increments on the suffix registers
    (add bit i of c = +1 on bits i..n-1): O(n^2) MCT gates, no
    ancillae — the simple variant of the Häner et al. construction.
    """
    n = num_bits
    if target is None:
        target = list(range(n))
    if num_lines is None:
        num_lines = max([*target, *controls], default=0) + 1
    _check_disjoint(target, controls)
    circuit = ReversibleCircuit(num_lines, name=f"add{constant}")
    constant %= 1 << n
    for bit in range(n - 1, -1, -1):
        if (constant >> bit) & 1:
            suffix = list(target[bit:])
            circuit.compose(
                controlled_increment(num_lines, suffix, controls)
            )
    return circuit


def comparator(
    num_bits: int,
    a_lines: Optional[Sequence[int]] = None,
    b_lines: Optional[Sequence[int]] = None,
    flag: Optional[int] = None,
    ancilla: Optional[int] = None,
) -> ReversibleCircuit:
    """Write ``a < b`` into the flag line (flag must start |0>).

    Implemented by computing the borrow of ``a - b`` through the
    Cuccaro chain run on the complement — compact and ancilla-light:
    complement a, add via MAJ chain to extract the carry, uncompute.
    """
    n = num_bits
    if a_lines is None:
        a_lines = list(range(n))
    if b_lines is None:
        b_lines = list(range(n, 2 * n))
    if ancilla is None:
        ancilla = 2 * n
    if flag is None:
        flag = 2 * n + 1
    _check_disjoint(a_lines, b_lines, [ancilla], [flag])
    num_lines = max([*a_lines, *b_lines, ancilla, flag]) + 1
    circuit = ReversibleCircuit(num_lines, name="cmp")
    # a < b  <=>  carry-out of (~a) + b is 1
    for line in a_lines:
        circuit.x(line)
    adder = cuccaro_adder(
        n, a_lines=list(a_lines), b_lines=list(b_lines),
        ancilla=ancilla, carry_out=flag,
    )
    # compute the MAJ chain + carry copy, then uncompute the chain:
    # cuccaro_adder already computes carry then UMA-restores b to a+b;
    # for a comparator we must restore b exactly, so run the adder and
    # then subtract back (adder dagger without the carry copy).
    circuit.compose(adder)
    undo = _adder_without_carry(n, list(a_lines), list(b_lines), ancilla)
    circuit.compose(undo.dagger())
    for line in a_lines:
        circuit.x(line)
    return circuit


def _adder_without_carry(n, a_lines, b_lines, ancilla) -> ReversibleCircuit:
    return cuccaro_adder(
        n, a_lines=a_lines, b_lines=b_lines, ancilla=ancilla, carry_out=None
    )


def modular_constant_adder(
    num_bits: int,
    constant: int,
    modulus: int,
) -> ReversibleCircuit:
    """``x <- x + c (mod N)`` for ``x < N`` (garbage-free).

    Standard ladder on ``n + 2`` lines (x on 0..n-1, compare flag n,
    scratch n+1):

      1. flag <- [x < N - c]           (constant comparison via MCTs)
      2. if flag: x += c  else: x += c - N  (two controlled constant adds)
      3. flag <- flag ^ [x >= c]       (uncompute the flag: after the
         addition, x >= c exactly when no wrap happened)

    Inputs with ``x >= N`` are don't-cares (mapped reversibly but
    meaninglessly), as usual for modular blocks.
    """
    n = num_bits
    if not 0 < modulus <= (1 << n):
        raise ValueError("modulus out of range")
    constant %= modulus
    flag = n
    num_lines = n + 1
    circuit = ReversibleCircuit(num_lines, name=f"add{constant}mod{modulus}")
    threshold = modulus - constant
    # step 1: flag <- [x < threshold] by explicit minterm-free compare:
    # flag flips for every x-prefix pattern proving x < threshold
    circuit.compose(
        _less_than_constant(n, threshold, flag, num_lines)
    )
    # step 2a: controlled add c (when flag = 1)
    circuit.compose(
        constant_adder(n, constant, controls=(flag,), num_lines=num_lines)
    )
    # step 2b: controlled add c - N mod 2^n (when flag = 0)
    circuit.x(flag)
    wrap_amount = (constant - modulus) % (1 << n)
    circuit.compose(
        constant_adder(n, wrap_amount, controls=(flag,), num_lines=num_lines)
    )
    circuit.x(flag)
    # step 3: uncompute flag: after the add, flag == [x' >= c] for
    # valid inputs; flip flag for every x' < c pattern, then invert
    circuit.compose(_less_than_constant(n, constant, flag, num_lines))
    circuit.x(flag)
    return circuit


def _less_than_constant(
    num_bits: int, constant: int, flag: int, num_lines: int
) -> ReversibleCircuit:
    """Flip ``flag`` iff the x register value is < constant.

    Prefix decomposition: x < c iff for some position i with c_i = 1,
    x agrees with c above i and x_i = 0.  Each such prefix pattern is
    one MCT with mixed polarities.
    """
    circuit = ReversibleCircuit(num_lines, name=f"lt{constant}")
    if constant >= (1 << num_bits):
        circuit.x(flag)
        return circuit
    for i in range(num_bits - 1, -1, -1):
        if not (constant >> i) & 1:
            continue
        controls = []
        polarity = []
        for j in range(num_bits - 1, i, -1):
            controls.append(j)
            polarity.append(bool((constant >> j) & 1))
        controls.append(i)
        polarity.append(False)
        circuit.add_gate(flag, tuple(controls), tuple(polarity))
    return circuit

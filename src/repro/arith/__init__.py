"""Reversible arithmetic blocks (the Shor-workload substrate)."""

from .adders import (
    comparator,
    constant_adder,
    controlled_increment,
    cuccaro_adder,
    modular_constant_adder,
)

__all__ = [
    "comparator",
    "constant_adder",
    "controlled_increment",
    "cuccaro_adder",
    "modular_constant_adder",
]

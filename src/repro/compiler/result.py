"""Compilation results: final artifacts, per-pass records, emission.

:class:`CompilationResult` is what :func:`repro.compile` returns — the
final :class:`~repro.pipeline.state.FlowState`, the per-pass
:class:`~repro.pipeline.runner.PassRecord` list with timing and
gate/T-count deltas, and lazy emitters (:meth:`~CompilationResult.to_qasm`,
:meth:`~CompilationResult.to_qsharp`,
:meth:`~CompilationResult.to_projectq`) that render the compiled
circuit in the target's output format on first use and cache the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.circuit import QuantumCircuit
from ..core.statistics import CircuitStatistics
from ..pipeline.flows import Flow
from ..pipeline.runner import PassRecord, format_records, state_metrics
from ..pipeline.state import FlowState, PipelineError
from .frontends import Workload
from .target import Target


class EmissionError(PipelineError):
    """Raised when a result cannot be rendered in the asked format."""


#: ProjectQ eDSL operator per core gate name (single target, no
#: controls unless noted).
_PROJECTQ_OPS = {
    "h": "H",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "sdg": "Sdag",
    "t": "T",
    "tdg": "Tdag",
}
_PROJECTQ_ROTATIONS = {"rx": "Rx", "ry": "Ry", "rz": "Rz", "p": "Ph"}


def _gate_to_projectq(gate) -> str:
    """Render one core gate as a ProjectQ eDSL statement."""
    name, controls, targets = gate.name, gate.controls, gate.targets
    if name == "barrier":
        return ""
    if name == "measure":
        return f"Measure | q[{targets[0]}]"
    if name in _PROJECTQ_OPS and not controls:
        return f"{_PROJECTQ_OPS[name]} | q[{targets[0]}]"
    if name in _PROJECTQ_ROTATIONS and not controls:
        op = _PROJECTQ_ROTATIONS[name]
        return f"{op}({gate.params[0]!r}) | q[{targets[0]}]"
    if name == "cx":
        return f"CNOT | (q[{controls[0]}], q[{targets[0]}])"
    if name == "cz":
        return f"CZ | (q[{controls[0]}], q[{targets[0]}])"
    if name == "ccx":
        return (
            f"Toffoli | (q[{controls[0]}], q[{controls[1]}], "
            f"q[{targets[0]}])"
        )
    if name == "swap":
        return f"Swap | (q[{targets[0]}], q[{targets[1]}])"
    raise EmissionError(
        f"gate {name!r} (controls={controls}) has no ProjectQ eDSL form"
    )


@dataclass
class CompilationResult:
    """What one :func:`repro.compile` call produced.

    Attributes:
        workload: the normalized input workload.
        target: the resolved target (``None`` for flow-only calls).
        flow: the flow that actually executed.
        state: the final flow store.
        records: per-pass execution records, in order.
        cache_stats: snapshot of the pass cache's counters
            (hits/misses/evictions/bytes — see
            :meth:`repro.pipeline.PassCache.counters`) taken when
            this compilation finished; ``None`` when it ran uncached.
            The disk figures are ``None`` when the process had not
            yet sized the disk tier (no scan is paid on this path).
    """

    workload: Workload
    target: Optional[Target]
    flow: Flow
    state: FlowState
    records: List[PassRecord]
    cache_stats: Optional[Dict[str, Optional[int]]] = None
    _emitted: Dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def circuit(self) -> Optional[QuantumCircuit]:
        """Return the final quantum circuit (or ``None``)."""
        return self.state.quantum

    @property
    def reversible(self):
        """Return the final reversible cascade (or ``None``)."""
        return self.state.reversible

    @property
    def routing(self):
        """Return the routing bookkeeping (or ``None``)."""
        return self.state.routing

    @property
    def statistics(self) -> Optional[CircuitStatistics]:
        """Return the ``ps`` statistics bundle when collected."""
        return self.state.artifacts.get("statistics")

    @property
    def total_seconds(self) -> float:
        """Return the summed wall-clock time of all passes."""
        return sum(record.seconds for record in self.records)

    @property
    def cache_hits(self) -> int:
        """Return how many passes replayed cached results."""
        return sum(1 for record in self.records if record.cache_hit)

    def metrics(self) -> Dict[str, Any]:
        """Return the cost metrics of the final store.

        Returns:
            The :func:`~repro.pipeline.runner.state_metrics` dict of
            the final state (``gates``, ``t_count``, ...).
        """
        return state_metrics(self.state)

    def record(self, name: str) -> PassRecord:
        """Return the first record of the pass called ``name``.

        Args:
            name: the pass name to look up.

        Returns:
            The matching :class:`~repro.pipeline.runner.PassRecord`.

        Raises:
            KeyError: if no pass of that name ran.
        """
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def report(self) -> str:
        """Format the per-pass records as an aligned text table."""
        return format_records(self.records)

    def summary(self) -> str:
        """Return a one-line workload/target/cost summary."""
        target = self.target.name if self.target is not None else "-"
        parts = [
            f"workload={self.workload.description}",
            f"target={target}",
            f"passes={len(self.records)}",
            f"cached={self.cache_hits}",
        ]
        metrics = self.metrics()
        for key in ("mct_gates", "gates", "t_count", "qubits"):
            if key in metrics:
                parts.append(f"{key}={metrics[key]}")
        return "  ".join(parts)

    # ------------------------------------------------------------------
    # lazy emission
    # ------------------------------------------------------------------
    def _require_circuit(self, format_name: str) -> QuantumCircuit:
        """Return the final quantum circuit or raise for emission."""
        if self.state.quantum is None:
            raise EmissionError(
                f"cannot emit {format_name}: the flow produced no "
                "quantum circuit (reversible-level target?)"
            )
        return self.state.quantum

    def to_qasm(self) -> str:
        """Render the compiled circuit as OpenQASM 2.0 (cached).

        Returns:
            The OpenQASM source text.
        """
        if "qasm" not in self._emitted:
            self._emitted["qasm"] = self._require_circuit("qasm").to_qasm()
        return self._emitted["qasm"]

    def to_qsharp(self, name: str = "CompiledOperation") -> str:
        """Render the compiled circuit as a Q# operation (cached).

        Args:
            name: the Q# operation name to emit.

        Returns:
            The Q# source text (Fig. 10 shape).
        """
        key = f"qsharp:{name}"
        if key not in self._emitted:
            from ..frameworks.qsharp import operation_from_circuit

            circuit = self._require_circuit("qsharp")
            self._emitted[key] = operation_from_circuit(name, circuit).code
        return self._emitted[key]

    def to_projectq(self) -> str:
        """Render the compiled circuit as a ProjectQ eDSL script (cached).

        Returns:
            Python source that replays the circuit through
            :mod:`repro.frameworks.projectq`.
        """
        if "projectq" not in self._emitted:
            circuit = self._require_circuit("projectq")
            statements = [
                _gate_to_projectq(gate)
                for gate in circuit.gates
                if gate.name != "barrier"
            ]
            ops = sorted(
                {s.split(" ", 1)[0].partition("(")[0] for s in statements}
                | {"MainEngine"}
            )
            lines = [
                f'"""ProjectQ replay of circuit {circuit.name!r} '
                '(generated by repro.compile)."""',
                "",
                "from repro.frameworks.projectq import (",
            ]
            lines.extend(f"    {op}," for op in ops)
            lines.append(")")
            lines.append("")
            lines.append("eng = MainEngine()")
            lines.append(
                f"q = eng.allocate_qureg({circuit.num_qubits})"
            )
            lines.extend(s for s in statements if s)
            lines.append("eng.flush()")
            self._emitted["projectq"] = "\n".join(lines) + "\n"
        return self._emitted["projectq"]

    def emit(self, format: Optional[str] = None) -> str:
        """Render in the given (or the target's default) format.

        Args:
            format: ``qasm``, ``qsharp`` or ``projectq``; defaults to
                the target's ``emitter``.

        Returns:
            The emitted source text.

        Raises:
            EmissionError: when no format is given and the target has
                no default emitter, or the format is unknown.
        """
        if format is None:
            format = self.target.emitter if self.target else None
        if format is None:
            raise EmissionError(
                "no emission format: pass format= or compile for a "
                "target with an emitter (qasm / qsharp / projectq)"
            )
        if format == "qasm":
            return self.to_qasm()
        if format == "qsharp":
            return self.to_qsharp()
        if format == "projectq":
            return self.to_projectq()
        raise EmissionError(
            f"unknown emission format {format!r}; expected qasm, "
            "qsharp or projectq"
        )

"""Compilation results: final artifacts, per-pass records, emission.

:class:`CompilationResult` is what :func:`repro.compile` returns — the
final :class:`~repro.pipeline.state.FlowState`, the per-pass
:class:`~repro.pipeline.runner.PassRecord` list with timing and
gate/T-count deltas, and lazy emission: :meth:`~CompilationResult.emit`
dispatches any registered :mod:`repro.emit` format (the legacy
:meth:`~CompilationResult.to_qasm` / :meth:`~CompilationResult.to_qsharp`
/ :meth:`~CompilationResult.to_projectq` are thin wrappers over it),
rendering the compiled circuit on first use and caching the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..simulator.statevector import SimulationResult

from ..core.circuit import QuantumCircuit
from ..core.statistics import CircuitStatistics
from ..emit import EmitterError, describe_formats
from ..emit import get as get_emitter
from ..engines import NoiseModel, as_noise_model
from ..engines import get as get_engine
from ..pipeline.flows import Flow
from ..pipeline.runner import PassRecord, format_records, state_metrics
from ..pipeline.state import FlowState, PipelineError
from .frontends import Workload
from .target import Target


class EmissionError(PipelineError, EmitterError):
    """Raised when a result cannot be rendered in the asked format."""


@dataclass
class CompilationResult:
    """What one :func:`repro.compile` call produced.

    Attributes:
        workload: the normalized input workload.
        target: the resolved target (``None`` for flow-only calls).
        flow: the flow that actually executed.
        state: the final flow store.
        records: per-pass execution records, in order.
        cache_stats: snapshot of the pass cache's counters
            (hits/misses/evictions/bytes, plus the resilience
            counters — ``io_errors`` with its memory/disk split,
            ``retries``, ``quarantined``, ``degraded`` — see
            :meth:`repro.pipeline.PassCache.counters`) taken when
            this compilation finished; ``None`` when it ran uncached.
            The disk figures are ``None`` when the process had not
            yet sized the disk tier (no scan is paid on this path).
        engine: the simulation backend requested at compile time
            (``repro.compile(..., engine=)``), canonical name or
            ``None``; :meth:`simulate` prefers it over the target's
            default.
    """

    workload: Workload
    target: Optional[Target]
    flow: Flow
    state: FlowState
    records: List[PassRecord]
    cache_stats: Optional[Dict[str, Optional[int]]] = None
    engine: Optional[str] = None
    _emitted: Dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def circuit(self) -> Optional[QuantumCircuit]:
        """Return the final quantum circuit (or ``None``)."""
        return self.state.quantum

    @property
    def reversible(self):
        """Return the final reversible cascade (or ``None``)."""
        return self.state.reversible

    @property
    def routing(self):
        """Return the routing bookkeeping (or ``None``)."""
        return self.state.routing

    @property
    def statistics(self) -> Optional[CircuitStatistics]:
        """Return the ``ps`` statistics bundle when collected."""
        return self.state.artifacts.get("statistics")

    @property
    def total_seconds(self) -> float:
        """Return the summed wall-clock time of all passes."""
        return sum(record.seconds for record in self.records)

    @property
    def cache_hits(self) -> int:
        """Return how many passes replayed cached results."""
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def verified(self) -> bool:
        """Whether every pass carries a *passed* verification verdict.

        ``False`` for unverified compilations and whenever any pass's
        check was skipped — an unchecked pass is never reported as
        verified (skips are explicit in :meth:`verification_report`).
        """
        return bool(self.records) and all(
            record.verification is not None and record.verification.passed
            for record in self.records
        )

    def verification_report(self) -> str:
        """Format each pass's verification verdict, one per line.

        Returns:
            Lines of ``<pass>: <status> (tier <tier>, <ms>)`` — or a
            single placeholder line when the compilation ran
            unverified.
        """
        lines = []
        for record in self.records:
            if record.verification is None:
                continue
            lines.append(f"{record.name}: {record.verification.describe()}")
        if not lines:
            return "(compilation ran unverified)"
        return "\n".join(lines)

    def metrics(self) -> Dict[str, Any]:
        """Return the cost metrics of the final store.

        Returns:
            The :func:`~repro.pipeline.runner.state_metrics` dict of
            the final state (``gates``, ``t_count``, ...).
        """
        return state_metrics(self.state)

    def record(self, name: str) -> PassRecord:
        """Return the first record of the pass called ``name``.

        Args:
            name: the pass name to look up.

        Returns:
            The matching :class:`~repro.pipeline.runner.PassRecord`.

        Raises:
            KeyError: if no pass of that name ran.
        """
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def report(self) -> str:
        """Format the per-pass records as an aligned text table."""
        return format_records(self.records)

    def summary(self) -> str:
        """Return a one-line workload/target/cost summary."""
        target = self.target.name if self.target is not None else "-"
        parts = [
            f"workload={self.workload.description}",
            f"target={target}",
            f"passes={len(self.records)}",
            f"cached={self.cache_hits}",
        ]
        metrics = self.metrics()
        for key in ("mct_gates", "gates", "t_count", "qubits"):
            if key in metrics:
                parts.append(f"{key}={metrics[key]}")
        return "  ".join(parts)

    # ------------------------------------------------------------------
    # lazy emission
    # ------------------------------------------------------------------
    def _require_circuit(self, format_name: str) -> QuantumCircuit:
        """Return the final quantum circuit or raise for emission."""
        if self.state.quantum is None:
            raise EmissionError(
                f"cannot emit {format_name}: the flow produced no "
                "quantum circuit (reversible-level target?)"
            )
        return self.state.quantum

    def to_qasm(self) -> str:
        """Render the compiled circuit as OpenQASM 2.0 (cached).

        Returns:
            The OpenQASM source text.
        """
        return self.emit("qasm2")

    def to_qsharp(self, name: str = "CompiledOperation") -> str:
        """Render the compiled circuit as a Q# operation (cached).

        Args:
            name: the Q# operation name to emit.

        Returns:
            The Q# source text (Fig. 10 shape).
        """
        if name == "CompiledOperation":
            # the backend's default: share emit("qsharp")'s memo slot
            return self.emit("qsharp")
        return self.emit("qsharp", name=name)

    def to_projectq(self) -> str:
        """Render the compiled circuit as a ProjectQ eDSL script (cached).

        Returns:
            Python source that replays the circuit through
            :mod:`repro.frameworks.projectq`.
        """
        return self.emit("projectq")

    def emit(self, format: Optional[str] = None, **opts) -> str:
        """Render in the given (or the default) format, memoized.

        Any format registered with :mod:`repro.emit` is accepted;
        when ``format`` is omitted, the target's ``emitter`` is used,
        falling back to the executed flow's ``emitter`` for flow-only
        compilations.  The rendered text is cached per
        ``(format, opts)``, so repeated calls return the same object.

        Args:
            format: a registered format name or alias (``qasm2``,
                ``qasm3``, ``qsharp``, ``projectq``, ``cirq``,
                ``qir``, ...); ``None`` selects the default emitter.
            **opts: backend-specific options (e.g. the Q# backend's
                ``name=``).

        Returns:
            The emitted source text.

        Raises:
            EmissionError: when no format is given and neither the
                target nor the flow has a default emitter, when the
                format is unknown (both messages list the registered
                formats), or when the circuit has gates the backend
                cannot express.
        """
        if format is None:
            format = self.target.emitter if self.target else None
        if format is None:
            format = getattr(self.flow, "emitter", None)
        if format is None:
            raise EmissionError(
                "no emission format: pass format= or compile for a "
                "target with a default emitter; registered formats: "
                f"{describe_formats()}"
            )
        try:
            emitter = get_emitter(format)
        except EmitterError as exc:
            raise EmissionError(str(exc)) from exc
        key = emitter.name
        if opts:
            options = ", ".join(
                f"{k}={v!r}" for k, v in sorted(opts.items())
            )
            key = f"{key}({options})"
        if key not in self._emitted:
            circuit = self._require_circuit(emitter.name)
            try:
                self._emitted[key] = emitter.emit(circuit, **opts)
            except EmissionError:
                raise
            except EmitterError as exc:
                raise EmissionError(str(exc)) from exc
        return self._emitted[key]

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        engine: Optional[str] = None,
        shots: int = 1024,
        noise: Union[NoiseModel, str, None] = None,
        seed: Optional[int] = None,
        **opts,
    ) -> "SimulationResult":
        """Run the compiled circuit on a registered simulation engine.

        Backend precedence: the explicit ``engine`` argument, then the
        ``engine=`` recorded at compile time, then the target's
        ``engine`` field, then ``statevector``.  The target's default
        ``noise`` model is applied when no ``noise`` argument is given
        and the selected backend supports noise (a noiseless backend
        silently skips the target default, but an *explicit* noise
        argument it cannot honor still raises).  Circuits without
        measurements get a terminal measure-all copy so every engine
        returns counts.

        Args:
            engine: registered engine name or alias (``statevector``,
                ``stabilizer``, ``density_matrix``, ``monte_carlo``,
                ...); ``None`` follows the precedence above.
            shots: measurement repetitions to report.
            noise: a :class:`~repro.engines.noise.NoiseModel`, a
                preset name (``"qe5"``), a ``"p1=0.001"`` rate list,
                or ``None`` for the target default.
            seed: RNG seed for reproducible sampling.
            **opts: backend-specific options.

        Returns:
            The run's
            :class:`~repro.simulator.statevector.SimulationResult`.

        Raises:
            PipelineError: when the flow produced no quantum circuit.
            EngineError: for unknown engines/noise specs, or jobs the
                backend cannot run.
        """
        if self.state.quantum is None:
            raise PipelineError(
                "cannot simulate: the flow produced no quantum circuit "
                "(reversible-level target?)"
            )
        name = engine or self.engine
        if name is None and self.target is not None:
            name = self.target.engine
        backend = get_engine(name or "statevector")
        model = as_noise_model(noise)
        if (
            model is None
            and noise is None
            and self.target is not None
            and backend.capabilities.noise
        ):
            model = as_noise_model(self.target.noise)
        circuit = self.state.quantum
        if not circuit.has_measurements():
            circuit = circuit.copy()
            circuit.measure_all()
        return backend.run(
            circuit, shots=shots, noise=model, seed=seed, **opts
        )

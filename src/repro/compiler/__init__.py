"""The compiler facade — ``repro.compile()`` as the one front door.

The paper's pitch is that a programmer hands a classical function to a
design-automation flow and gets a device-ready quantum circuit back.
This package is that front door, in four layers:

* :mod:`~.frontends` — auto-detect and normalize any workload shape
  (truth table, permutation, predicate, expression string, ESOP, BDD,
  generator spec, or an existing circuit) into a
  :class:`~.frontends.Workload`;
* :mod:`~.target` (aliased as ``targets``) — the immutable
  :class:`~.target.Target` (gate set, coupling map, optimization
  level, emitter) with registered presets ``targets.TOFFOLI``,
  ``targets.CLIFFORD_T``, ``targets.IBM_QE5``, ``targets.QSHARP``,
  ``targets.PROJECTQ``, resolved to pass sequences via the existing
  flow builders;
* :mod:`~.result` — :class:`~.result.CompilationResult`: final
  circuit, per-pass records, statistics, and lazy
  ``to_qasm``/``to_qsharp``/``to_projectq`` emission;
* :mod:`~.session` — :func:`compile` itself plus
  :class:`~.session.CompilerSession` for batched compilation and
  parameter sweeps over a shared (optionally disk-backed) pass cache.

The framework entry points (Q# oracle generation, the ProjectQ
compiler chain) and the algorithm oracle builders dispatch through
this facade.
"""

from . import target as targets
from .frontends import (
    SUPPORTED_SHAPES,
    Workload,
    as_truth_table,
    detect_workload,
    expression_to_truth_table,
)
from .result import CompilationResult, EmissionError
from .session import (
    NAMED_FLOWS,
    CompilerSession,
    SweepPoint,
    SweepResult,
    compile,
)
from .target import (
    CLIFFORD_T,
    IBM_QE5,
    PROJECTQ,
    QSHARP,
    TOFFOLI,
    Target,
    get_target,
    list_targets,
    register_target,
)

__all__ = [
    "targets",
    "SUPPORTED_SHAPES",
    "Workload",
    "as_truth_table",
    "detect_workload",
    "expression_to_truth_table",
    "CompilationResult",
    "EmissionError",
    "NAMED_FLOWS",
    "CompilerSession",
    "SweepPoint",
    "SweepResult",
    "compile",
    "CLIFFORD_T",
    "IBM_QE5",
    "PROJECTQ",
    "QSHARP",
    "TOFFOLI",
    "Target",
    "get_target",
    "list_targets",
    "register_target",
]

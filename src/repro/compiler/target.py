"""Compilation targets: gate set, device topology, emitter, presets.

A :class:`Target` is an immutable description of *where* a compiled
circuit is going — its gate set (reversible MCT level or Clifford+T),
an optional device :class:`~repro.mapping.routing.CouplingMap`, the
optimization effort, the preferred synthesis method and the default
emission format.  :meth:`Target.flow` resolves a target against a
normalized :class:`~.frontends.Workload` into a concrete
:class:`~repro.pipeline.flows.Flow` built from the existing pass
vocabulary, so facade compilations are gate-for-gate identical to the
hand-wired presets (``flows.EQ5``/``QSHARP``/``DEVICE``).

Resolution rules (also documented in docs/ARCHITECTURE.md):

1. the workload's prelude passes run first (specification generation);
2. function-level workloads get a synthesis pass — the target's
   ``synthesis`` override, else the frontend's recommendation;
3. ``optimization_level`` >= 1 adds cascade simplification
   (``revsimp``); reversible-level targets stop here;
4. quantum targets lower with the Clifford+T mapping, then level 1
   adds gate cancellation, level >= 2 the T-par stage;
5. a ``coupling`` appends device routing, ``collect_statistics`` the
   ``ps`` analysis pass;
6. quantum-circuit workloads skip 2-3 and run the Sec. VII device
   shape instead (cancel, on-need lowering, T-par at level >= 2,
   routing).

The module also keeps a registry of named presets —
:data:`TOFFOLI`, :data:`CLIFFORD_T`, :data:`IBM_QE5`, :data:`QSHARP`
and :data:`PROJECTQ` — addressable by name everywhere a target is
accepted (``repro.compile(pi, target="ibm_qe5")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Union

from ..emit import EmitterError
from ..emit import get as get_emitter
from ..engines import EngineError, NoiseModel, as_noise_model
from ..engines import get as get_engine
from ..mapping.routing import CouplingMap
from ..pipeline.flows import Flow, device as device_flow
from ..pipeline.passes import (
    CancelPass,
    MapToCliffordTPass,
    Pass,
    RoutePass,
    SimplifyPass,
    StatisticsPass,
    SynthesisPass,
    TparPass,
)
from ..pipeline.state import PipelineError
from ..verify.checker import as_checker
from .frontends import Workload, detect_workload

#: The Clifford+T basis the mapping stage emits.
CLIFFORD_T_GATES = ("h", "s", "sdg", "t", "tdg", "x", "z", "cx")

#: The reversible (multiple-controlled Toffoli) level.
MCT_GATES = ("mct",)


@dataclass(frozen=True)
class Target:
    """An immutable compilation target.

    Attributes:
        name: registry identifier (lowercase).
        description: one-line summary shown by ``list_targets``.
        gate_set: the output basis; ``("mct",)`` keeps the flow at the
            reversible level, anything else lowers to Clifford+T.
        coupling: device topology to route onto (``None`` = all-to-all).
        optimization_level: 0 = none, 1 = simplification +
            cancellation, 2 = additionally T-par phase folding.
        emitter: default emission format of
            :meth:`~.result.CompilationResult.emit` — any name or
            alias registered with :mod:`repro.emit` (``qasm2``,
            ``qasm3``, ``qsharp``, ``projectq``, ``cirq``, ``qir``,
            ...), canonicalized at construction; unknown names raise
            with the registered list.
        synthesis: synthesis method override (name or callable); the
            frontend recommendation is used when ``None``.
        relative_phase: use relative-phase Toffolis in the mapping.
        collect_statistics: append the ``ps`` statistics pass.
        verify: default verification mode for compilations against
            this target — ``"off"`` (default), ``"auto"`` (tiered
            checking of every pass), ``"strict"`` (a skipped check
            also fails), or ``True``/``False``; an explicit
            ``repro.compile(verify=...)`` argument overrides it.
        engine: default simulation backend of
            :meth:`~.result.CompilationResult.simulate` — any name or
            alias registered with :mod:`repro.engines`
            (``statevector``, ``stabilizer``, ``density_matrix``,
            ``monte_carlo``, ...), canonicalized at construction;
            unknown names raise with the registered list.  An
            explicit ``simulate(engine=...)`` argument overrides it.
        noise: default :class:`~repro.engines.noise.NoiseModel` for
            simulations against this target (also accepts a preset
            name like ``"qe5"`` or a ``"p1=0.001"`` rate list,
            resolved at construction); only applied when the selected
            engine supports noise.
    """

    name: str
    description: str = ""
    gate_set: Tuple[str, ...] = CLIFFORD_T_GATES
    coupling: Optional[CouplingMap] = None
    optimization_level: int = 2
    emitter: Optional[str] = None
    synthesis: Optional[Union[str, Callable]] = field(default=None)
    relative_phase: bool = True
    collect_statistics: bool = False
    verify: Union[bool, str] = "off"
    engine: Optional[str] = None
    noise: Union[NoiseModel, str, None] = None

    def __post_init__(self) -> None:
        """Canonicalize ``emitter``/``engine``/``noise``, vet ``verify``.

        Raises:
            PipelineError: for emission formats, engines or noise
                specs the registries do not know (the message lists
                the registered ones), or an unknown verification mode.
        """
        try:
            as_checker(self.verify)
        except ValueError as exc:
            raise PipelineError(f"target {self.name!r}: {exc}") from exc
        if self.engine is not None:
            try:
                canonical_engine = get_engine(self.engine).name
            except EngineError as exc:
                raise PipelineError(f"target {self.name!r}: {exc}") from exc
            if canonical_engine != self.engine:
                object.__setattr__(self, "engine", canonical_engine)
        if self.noise is not None:
            try:
                resolved = as_noise_model(self.noise)
            except EngineError as exc:
                raise PipelineError(f"target {self.name!r}: {exc}") from exc
            if resolved is not self.noise:
                object.__setattr__(self, "noise", resolved)
        if self.emitter is None:
            return
        try:
            canonical = get_emitter(self.emitter).name
        except EmitterError as exc:
            raise PipelineError(
                f"target {self.name!r}: {exc}"
            ) from exc
        if canonical != self.emitter:
            object.__setattr__(self, "emitter", canonical)

    def with_(self, **changes) -> "Target":
        """Return a copy of the target with fields replaced.

        Args:
            **changes: field name/value pairs to override.

        Returns:
            The derived :class:`Target` (not registered).
        """
        return replace(self, **changes)

    @property
    def reversible_level(self) -> bool:
        """Whether the target stays at the reversible MCT level."""
        return self.gate_set == MCT_GATES

    # ------------------------------------------------------------------
    def flow(self, workload) -> Flow:
        """Resolve the target against a workload into a concrete flow.

        Args:
            workload: a :class:`~.frontends.Workload` (or any raw
                workload shape, normalized via
                :func:`~.frontends.detect_workload`).

        Returns:
            The :class:`~repro.pipeline.flows.Flow` realizing this
            target for that workload, built from the existing pass
            vocabulary (gate-for-gate identical to the hand-wired
            preset of the same shape).

        Raises:
            PipelineError: when the workload provides nothing to
                compile, or a quantum circuit is handed to a
                reversible-level target.
        """
        if not isinstance(workload, Workload):
            workload = detect_workload(workload)
        level = self.optimization_level
        passes = list(workload.prelude)
        state = workload.state
        if workload.needs_synthesis or passes:
            passes.append(
                SynthesisPass(self.synthesis or workload.synthesis or "tbs")
            )
            passes.extend(self._reversible_tail(level))
        elif state.quantum is not None:
            if self.reversible_level:
                raise PipelineError(
                    f"target {self.name!r} is reversible-level (MCT) but "
                    f"workload {workload.description} is already a "
                    "quantum circuit"
                )
            passes.extend(
                device_flow(
                    coupling=self.coupling, optimize=level >= 2
                ).passes
            )
            if self.collect_statistics:
                passes.append(StatisticsPass())
        elif state.reversible is not None:
            passes.extend(self._reversible_tail(level))
        else:
            raise PipelineError(
                f"workload {workload.description} provides nothing to "
                "compile; pass a specification, a circuit, or an "
                "explicit flow="
            )
        return Flow(
            name=f"{self.name}[{workload.kind}]",
            description=(
                f"target {self.name}: {workload.description}"
            ),
            passes=tuple(passes),
        )

    def _reversible_tail(self, level: int) -> Tuple[Pass, ...]:
        """Build the pass tail from the reversible level downward."""
        passes = []
        if level >= 1:
            passes.append(SimplifyPass())
        if self.reversible_level:
            if self.collect_statistics:
                raise PipelineError(
                    f"target {self.name!r}: collect_statistics needs a "
                    "quantum circuit, but the target is "
                    "reversible-level (MCT); drop the flag or lower "
                    "the gate set"
                )
            return tuple(passes)
        passes.append(
            MapToCliffordTPass(relative_phase=self.relative_phase)
        )
        if level == 1:
            passes.append(CancelPass())
        elif level >= 2:
            passes.append(TparPass(pre_cancel=True, post_cancel=True))
        if self.coupling is not None:
            passes.append(RoutePass(self.coupling))
        if self.collect_statistics:
            passes.append(StatisticsPass())
        return tuple(passes)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Target] = {}


def register_target(target: Target, overwrite: bool = False) -> Target:
    """Register a target under its (lowercased) name.

    Args:
        target: the target to register.
        overwrite: replace an existing registration of the same name.

    Returns:
        The registered target (for chaining).

    Raises:
        PipelineError: when the name is taken and ``overwrite`` is
            false.
    """
    key = target.name.lower()
    if key in _REGISTRY and not overwrite:
        raise PipelineError(
            f"target {target.name!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    _REGISTRY[key] = target
    return target


def get_target(spec: Union[Target, str, None]) -> Target:
    """Resolve a target argument to a :class:`Target` instance.

    Args:
        spec: a target, a registered name (case-insensitive), or
            ``None`` for the default (:data:`CLIFFORD_T`).

    Returns:
        The resolved target.

    Raises:
        PipelineError: for unknown names (the message lists the
            registered ones).
    """
    if spec is None:
        return CLIFFORD_T
    if isinstance(spec, Target):
        return spec
    target = _REGISTRY.get(str(spec).lower())
    if target is None:
        raise PipelineError(
            f"unknown target {spec!r}; registered targets: "
            f"{', '.join(list_targets())}"
        )
    return target


def list_targets() -> Tuple[str, ...]:
    """Return the registered target names in registration order."""
    return tuple(_REGISTRY)


#: Reversible MCT level: synthesis plus cascade simplification.
TOFFOLI = register_target(
    Target(
        name="toffoli",
        description="reversible MCT cascade (synthesis + revsimp)",
        gate_set=MCT_GATES,
        optimization_level=1,
    )
)

#: The Eq. (5) shape: Clifford+T with T-par and final statistics.
CLIFFORD_T = register_target(
    Target(
        name="clifford_t",
        description="Clifford+T with T-par optimization (Eq. 5 shape)",
        optimization_level=2,
        collect_statistics=True,
    )
)

#: The paper's 5-qubit IBM QE bowtie chip, with routing, QASM out, and
#: the exact noisy simulation tier at the device's calibration rates.
IBM_QE5 = register_target(
    Target(
        name="ibm_qe5",
        description="IBM QE 5-qubit bowtie chip (routed, QASM emitter)",
        coupling=CouplingMap.ibm_qx2(),
        optimization_level=2,
        emitter="qasm2",
        engine="density_matrix",
        noise="qe5",
    )
)

#: The Fig. 10 Q# preprocessing shape with the Q# emitter.
QSHARP = register_target(
    Target(
        name="qsharp",
        description="Q# oracle preprocessing (Fig. 10 shape, Q# emitter)",
        optimization_level=1,
        emitter="qsharp",
    )
)

#: The ProjectQ compiler-chain shape (all-to-all) with eDSL emission.
PROJECTQ = register_target(
    Target(
        name="projectq",
        description="ProjectQ compiler chain (all-to-all, eDSL emitter)",
        optimization_level=2,
        emitter="projectq",
    )
)

"""Workload frontends: normalize any specification shape for compilation.

``repro.compile()`` accepts *workloads* — whatever object the caller
already has in hand: a :class:`~repro.boolean.truth_table.TruthTable`,
a :class:`~repro.boolean.permutation.BitPermutation`, a Python
predicate, a Boolean expression string, an ESOP cube list, a BDD node,
a revgen-style generator spec, or an existing circuit.
:func:`detect_workload` maps each shape onto a :class:`Workload`: a
:class:`~repro.pipeline.state.FlowState` seed, an optional prelude
pass (specification generation), and a recommended synthesis method
that the :class:`~.target.Target` resolution consumes.

Detection is strict about ambiguity: an integer sequence that is both
a valid permutation image and a valid truth-table value list raises a
``TypeError`` telling the caller which wrapper type to use instead of
silently guessing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Tuple, Union

from ..boolean.bdd import Bdd
from ..boolean.cube import Cube, esop_to_truth_table
from ..boolean.expression import predicate_to_truth_table
from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import MultiTruthTable, TruthTable
from ..core.circuit import QuantumCircuit
from ..pipeline.flows import _generate_pass
from ..pipeline.passes import GENERATOR_KINDS, Pass
from ..pipeline.state import FlowState
from ..synthesis.reversible import ReversibleCircuit

#: Synthesis method recommended per specification type.
DEFAULT_SYNTHESIS = {"permutation": "tbs", "truth_table": "esop"}

#: One-line description of every accepted workload shape, used to
#: build actionable ``TypeError`` messages.
SUPPORTED_SHAPES = (
    "TruthTable / MultiTruthTable (reversible)",
    "BitPermutation (or an int sequence permuting 0..2^n-1)",
    "a Python predicate (callable over bool arguments)",
    "a Boolean expression string, e.g. '(a and b) ^ (c and d)'",
    "a revgen generator spec: 'hwb=4' or {'hwb': 4}",
    "an ESOP cube list (sequence of Cube)",
    "a BDD function: (Bdd, node) pair",
    "QuantumCircuit / ReversibleCircuit (synthesis is skipped)",
    "OpenQASM 2.0 source text, or a pathlib.Path to an importable "
    "circuit file (round-trips through the repro.emit registry)",
    "FlowState / Workload (passed through)",
)

_GENERATOR_SPEC_RE = re.compile(r"^\s*\w+\s*=\s*-?\d+(\s*,\s*\w+\s*=\s*-?\d+)*\s*$")


@dataclass(frozen=True)
class Workload:
    """A normalized compilation input.

    Attributes:
        kind: detected shape — ``generator``, ``permutation``,
            ``truth_table``, ``circuit``, ``reversible``, ``state``
            or ``empty``.
        description: human-readable workload summary for reports.
        state: the :class:`~repro.pipeline.state.FlowState` seed.
        prelude: passes to run before synthesis (the generator pass
            for revgen-style specs; usually empty).
        synthesis: recommended synthesis method (name or callable);
            ``None`` when no synthesis stage applies.
        needs_synthesis: whether target resolution should insert a
            synthesis pass (false for circuit passthrough).
    """

    kind: str
    description: str
    state: FlowState
    prelude: Tuple[Pass, ...] = ()
    synthesis: Optional[Union[str, Callable]] = None
    needs_synthesis: bool = True

    def with_synthesis(self, method: Union[str, Callable]) -> "Workload":
        """Return a copy recommending ``method`` for synthesis.

        Args:
            method: synthesis method name or callable.

        Returns:
            A new :class:`Workload` with the recommendation replaced.
        """
        return replace(self, synthesis=method)


def _unsupported(obj: Any, hint: str = "") -> TypeError:
    """Build the actionable TypeError for an undetectable workload."""
    lines = [f"cannot interpret {type(obj).__name__!r} object as a workload"]
    if hint:
        lines.append(hint)
    lines.append("supported workload shapes:")
    lines.extend(f"  - {shape}" for shape in SUPPORTED_SHAPES)
    return TypeError("\n".join(lines))


def _is_power_of_two(n: int) -> bool:
    """Return whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def _expression_names(expr: str) -> Tuple[str, ...]:
    """Extract the sorted free variable names of a Boolean expression."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise _unsupported(
            expr,
            hint=(
                f"string {expr!r} is neither a generator spec "
                f"(families: {', '.join(GENERATOR_KINDS)}) nor a "
                f"parseable Boolean expression: {exc.msg}"
            ),
        ) from exc
    names = sorted(
        {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
    )
    if not names:
        raise _unsupported(
            expr, hint="Boolean expression has no free variables"
        )
    return tuple(names)


def expression_to_truth_table(expr: str) -> TruthTable:
    """Evaluate a Boolean expression string over its free variables.

    Variables are bound in sorted name order: in
    ``"(a and b) ^ (c and d)"`` the variable ``a`` is input bit 0.
    The expression is evaluated *symbolically* on the AST (the same
    evaluator Python predicates use), never ``eval``-uated — a string
    workload cannot execute code, and the translation is exact rather
    than tabulated.

    Args:
        expr: a Boolean expression over ``and``/``or``/``not``,
            ``&``/``|``/``^``/``~``, ``==``/``!=``, conditionals and
            the constants 0/1, e.g. ``"a and not b"``.

    Returns:
        The evaluated :class:`~repro.boolean.truth_table.TruthTable`.

    Raises:
        TypeError: when the string does not parse, or uses syntax
            outside the Boolean fragment (pass a Python predicate for
            arithmetic like ``a + b >= 1``).
    """
    from ..boolean.expression import ExpressionError, _eval

    names = _expression_names(expr)
    tree = ast.parse(expr, mode="eval")
    env = {
        name: TruthTable.projection(len(names), i)
        for i, name in enumerate(names)
    }
    try:
        return _eval(tree.body, env, len(names))
    except ExpressionError as exc:
        raise _unsupported(
            expr,
            hint=(
                f"expression {expr!r} uses syntax outside the Boolean "
                f"fragment ({exc}); pass a Python predicate (def/"
                "lambda) for arithmetic predicates"
            ),
        ) from exc


def _generator_workload(options: dict) -> Workload:
    """Build a generator-prelude workload from revgen-style options."""
    prelude = _generate_pass(dict(options))
    label = ",".join(f"{k}={v}" for k, v in sorted(options.items()))
    return Workload(
        kind="generator",
        description=f"revgen({label})",
        state=FlowState(),
        prelude=(prelude,),
        synthesis="tbs",
    )


def _first_significant_line(text: str) -> str:
    """Return the first non-blank, non-comment line of QASM-ish text."""
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if line:
            return line
    return ""


def _looks_like_qasm(text: str) -> bool:
    """Detect OpenQASM source text (comments/blank lines allowed)."""
    return _first_significant_line(text).startswith("OPENQASM")


def _qasm_workload(text: str, origin: str = "") -> Workload:
    """Import OpenQASM source text as a circuit workload.

    Version and syntax rejection (including the OpenQASM 3 hint)
    lives in the parser itself, so every entry point — registry
    ``parse``, shell, CLI, this frontend — reports the same message.
    """
    from .. import emit

    try:
        circuit = emit.parse(text, "qasm2")
    except emit.EmitterError as exc:
        raise _unsupported(text, hint=str(exc)) from exc
    label = origin or f"{circuit.num_qubits} qubits"
    return Workload(
        kind="circuit",
        description=f"qasm({label})",
        state=FlowState(quantum=circuit),
        needs_synthesis=False,
    )


def _path_workload(path: Path) -> Workload:
    """Import a circuit file, resolving the format by extension."""
    from .. import emit

    try:
        emitter = emit.emitter_for_path(str(path))
    except emit.EmitterError as exc:
        raise _unsupported(path, hint=str(exc)) from exc
    if not emit.can_parse(emitter):
        raise _unsupported(
            path,
            hint=(
                f"format {emitter.name!r} has no importer; formats "
                "with round-trip parse support: "
                f"{', '.join(emit.parseable_formats())}"
            ),
        )
    if emitter.name == "qasm2":
        return _qasm_workload(path.read_text(), origin=path.name)
    try:
        circuit = emitter.parse(path.read_text())
    except emit.EmitterError as exc:
        raise _unsupported(path, hint=str(exc)) from exc
    return Workload(
        kind="circuit",
        description=f"{emitter.name}({path.name})",
        state=FlowState(quantum=circuit),
        needs_synthesis=False,
    )


def _parse_spec_string(text: str) -> Workload:
    """Interpret a string as a generator spec or Boolean expression."""
    if _looks_like_qasm(text):
        return _qasm_workload(text)
    if _GENERATOR_SPEC_RE.match(text):
        options = {}
        for item in text.split(","):
            key, _, value = item.partition("=")
            options[key.strip()] = int(value)
        if any(key in GENERATOR_KINDS for key in options):
            return _generator_workload(options)
    table = expression_to_truth_table(text)
    return Workload(
        kind="truth_table",
        description=f"expr({text!r}, {table.num_vars} vars)",
        state=FlowState(function=table),
        synthesis=DEFAULT_SYNTHESIS["truth_table"],
    )


def _sequence_workload(values: Sequence[Any]) -> Workload:
    """Classify an int sequence as permutation image or value list."""
    items = list(values)
    if items and all(isinstance(v, Cube) for v in items):
        num_vars = max(
            (v.mask.bit_length() for v in items), default=0
        )
        table = esop_to_truth_table(items, num_vars)
        return Workload(
            kind="truth_table",
            description=f"esop({len(items)} cubes, {num_vars} vars)",
            state=FlowState(function=table),
            synthesis=DEFAULT_SYNTHESIS["truth_table"],
        )
    if not items or not all(isinstance(v, (int, bool)) for v in items):
        raise _unsupported(values)
    if not _is_power_of_two(len(items)):
        raise _unsupported(
            values,
            hint=(
                f"sequence length {len(items)} is not a power of two, "
                "so it is neither a permutation image nor a "
                "truth-table value list"
            ),
        )
    ints = [int(v) for v in items]
    is_permutation = sorted(ints) == list(range(len(ints)))
    is_value_list = all(v in (0, 1) for v in ints)
    if is_permutation and is_value_list:
        raise _unsupported(
            values,
            hint=(
                f"sequence {ints!r} is ambiguous: it is both a "
                "permutation of 0..2^n-1 and a 0/1 truth-table value "
                "list; wrap it in BitPermutation(...) or "
                "TruthTable.from_values(...) to disambiguate"
            ),
        )
    if is_permutation:
        return detect_workload(BitPermutation(ints))
    if is_value_list:
        return detect_workload(TruthTable.from_values(ints))
    raise _unsupported(
        values,
        hint=(
            "int sequence is neither a permutation of 0..2^n-1 nor a "
            "0/1 truth-table value list"
        ),
    )


def detect_workload(obj: Any) -> Workload:
    """Auto-detect a workload's shape and normalize it.

    Args:
        obj: any supported workload shape (see
            :data:`SUPPORTED_SHAPES`), or ``None`` for an empty seed
            (useful with an explicit ``flow=`` that generates its own
            specification).

    Returns:
        The normalized :class:`Workload`.

    Raises:
        TypeError: for unsupported or ambiguous inputs; the message
            names the supported shapes and, for ambiguous sequences,
            the wrapper types that disambiguate.
    """
    if isinstance(obj, Workload):
        return obj
    if obj is None:
        return Workload(
            kind="empty",
            description="(empty)",
            state=FlowState(),
            needs_synthesis=False,
        )
    if isinstance(obj, FlowState):
        needs_synthesis = (
            obj.function is not None
            and obj.reversible is None
            and obj.quantum is None
        )
        synthesis = None
        if needs_synthesis:
            key = (
                "permutation"
                if isinstance(obj.function, BitPermutation)
                else "truth_table"
            )
            synthesis = DEFAULT_SYNTHESIS[key]
        return Workload(
            kind="state",
            description="flow state",
            state=obj,
            synthesis=synthesis,
            needs_synthesis=needs_synthesis,
        )
    if isinstance(obj, BitPermutation):
        return Workload(
            kind="permutation",
            description=f"permutation({obj.num_bits} bits)",
            state=FlowState(function=obj),
            synthesis=DEFAULT_SYNTHESIS["permutation"],
        )
    if isinstance(obj, TruthTable):
        return Workload(
            kind="truth_table",
            description=f"truth_table({obj.num_vars} vars)",
            state=FlowState(function=obj),
            synthesis=DEFAULT_SYNTHESIS["truth_table"],
        )
    if isinstance(obj, MultiTruthTable):
        if not obj.is_reversible():
            raise _unsupported(
                obj,
                hint=(
                    "multi-output function is not reversible; embed it "
                    "first (repro.synthesis.embedding.bennett_embedding) "
                    "or compile one output TruthTable at a time"
                ),
            )
        return detect_workload(BitPermutation.from_truth_tables(obj))
    if isinstance(obj, QuantumCircuit):
        return Workload(
            kind="circuit",
            description=f"circuit({obj.name!r}, {obj.num_qubits} qubits)",
            state=FlowState(quantum=obj),
            needs_synthesis=False,
        )
    if isinstance(obj, ReversibleCircuit):
        return Workload(
            kind="reversible",
            description=(
                f"reversible({obj.name!r}, {obj.num_lines} lines)"
            ),
            state=FlowState(reversible=obj),
            needs_synthesis=False,
        )
    if isinstance(obj, str):
        return _parse_spec_string(obj)
    if isinstance(obj, Path):
        return _path_workload(obj)
    if isinstance(obj, dict):
        if any(key in GENERATOR_KINDS for key in obj):
            return _generator_workload(obj)
        raise _unsupported(
            obj,
            hint=(
                "dict workload needs exactly one generator family key "
                f"out of: {', '.join(GENERATOR_KINDS)}"
            ),
        )
    if (
        isinstance(obj, tuple)
        and len(obj) == 2
        and isinstance(obj[0], Bdd)
    ):
        manager, node = obj
        table = manager.to_truth_table(node)
        return Workload(
            kind="truth_table",
            description=f"bdd(node {node}, {manager.num_vars} vars)",
            state=FlowState(function=table),
            synthesis="bdd",
        )
    if isinstance(obj, type):
        raise _unsupported(
            obj,
            hint=(
                f"got the class {obj.__name__!r} itself, not an "
                "instance — construct the specification first"
            ),
        )
    if callable(obj):
        table = predicate_to_truth_table(obj)
        name = getattr(obj, "__name__", "predicate")
        return Workload(
            kind="truth_table",
            description=f"predicate({name}, {table.num_vars} vars)",
            state=FlowState(function=table),
            synthesis=DEFAULT_SYNTHESIS["truth_table"],
        )
    if isinstance(obj, Sequence):
        return _sequence_workload(obj)
    raise _unsupported(obj)


def _widen_table(table: TruthTable, num_vars: int) -> TruthTable:
    """Extend a table with don't-care variables up to ``num_vars``."""
    if num_vars == table.num_vars:
        return table
    if num_vars < table.num_vars:
        raise _unsupported(
            table,
            hint=(
                f"workload uses {table.num_vars} variables but "
                f"num_vars={num_vars} was requested"
            ),
        )
    block = table.bits
    width = 1 << table.num_vars
    bits = 0
    for i in range(1 << (num_vars - table.num_vars)):
        bits |= block << (i * width)
    return TruthTable(num_vars, bits)


def as_truth_table(obj: Any, num_vars: Optional[int] = None) -> TruthTable:
    """Normalize any function-shaped workload to a single truth table.

    The algorithm entry points (Grover, hidden shift) use this to
    accept the same workload shapes as :func:`repro.compile`.

    Args:
        obj: a TruthTable, predicate, expression string, cube list, or
            BDD pair.
        num_vars: arity override; predicates are tabulated at this
            arity, and derived tables (expressions, cube lists, BDD
            nodes) whose variables are positional are widened with
            don't-care variables up to it.

    Returns:
        The workload's single-output truth table.

    Raises:
        TypeError: when the workload is not function-shaped (e.g. a
            circuit or permutation), cannot be detected, or uses more
            variables than ``num_vars``.
    """
    if isinstance(obj, TruthTable):
        if num_vars is not None and num_vars != obj.num_vars:
            raise _unsupported(
                obj,
                hint=(
                    f"explicit TruthTable has {obj.num_vars} variables "
                    f"but num_vars={num_vars} was requested"
                ),
            )
        return obj
    if callable(obj) and not isinstance(obj, type):
        return predicate_to_truth_table(obj, num_vars)
    workload = detect_workload(obj)
    function = workload.state.function
    if isinstance(function, TruthTable):
        if num_vars is not None:
            return _widen_table(function, num_vars)
        return function
    raise _unsupported(
        obj,
        hint=(
            f"workload of kind {workload.kind!r} does not describe a "
            "single-output Boolean function"
        ),
    )

"""The compile facade and batched compilation sessions.

:func:`compile` is the library's one front door: normalize any
workload shape (:mod:`~.frontends`), resolve a :class:`~.target.Target`
to a concrete flow, execute it on the pass manager, and hand back a
:class:`~.result.CompilationResult`.

:class:`CompilerSession` amortizes many compilations:
:meth:`~CompilerSession.compile_many` fans workloads out over a
thread (or process) pool, and :meth:`~CompilerSession.sweep` expands a
parameter grid into compilation points — all sharing one
:class:`~repro.pipeline.cache.PassCache` (optionally disk-backed via
``cache=<path>``), so repeated sub-flows replay instead of recompute.

The ``*_async`` variants (:meth:`~CompilerSession.compile_many_async`,
:meth:`~CompilerSession.sweep_async`) run the same batches on an
asyncio event loop: every job is its own future, in-flight concurrency
is bounded by a semaphore, results come back in deterministic input
order, the first failing job cancels the rest and its exception
propagates unwrapped, and cancelling the outer coroutine cancels every
pending job.  Jobs already running on an executor worker when the
batch fails or is cancelled cannot be interrupted mid-pass; they
finish in the background and their results are discarded.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import os
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeout,
)
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..engines import EngineError
from ..engines import get as get_engine
from ..pipeline.cache import PassCache, shared_cache
from ..pipeline.flows import DEVICE, EQ5, QSHARP as QSHARP_FLOW, Flow
from ..pipeline.passes import GENERATOR_KINDS
from ..pipeline.runner import Pipeline
from ..pipeline.state import PipelineError
from ..resilience.errors import DeadlineExceeded
from ..resilience.faults import fault_point
from ..resilience.policies import Deadline, RetryPolicy, as_retry
from ..verify.checker import EquivalenceChecker
from .frontends import Workload, detect_workload
from .result import CompilationResult
from .target import Target, get_target

#: Extra seconds the hard per-job backstop grants beyond
#: ``job_timeout`` before abandoning a worker: the cooperative
#: deadline inside the job should fire first and carry the precise
#: flow position; the backstop exists for jobs wedged in
#: non-cooperative code.
_JOB_TIMEOUT_GRACE = 0.1

#: Named flows accepted wherever a ``flow=`` argument takes a string.
NAMED_FLOWS: Dict[str, Flow] = {
    "eq5": EQ5,
    "qsharp": QSHARP_FLOW,
    "device": DEVICE,
}

#: Sweep parameter keys that derive a per-point target override.
_TARGET_FIELDS = tuple(
    f.name for f in dataclass_fields(Target) if f.name != "name"
)

#: Generator option keys accepted alongside a family key in sweeps.
_GENERATOR_OPTION_KEYS = ("seed", "const", "amount")


def _resolve_flow(flow: Union[Flow, str, None]) -> Optional[Flow]:
    """Map a flow argument (object or preset name) to a Flow."""
    if flow is None or isinstance(flow, Flow):
        return flow
    preset = NAMED_FLOWS.get(str(flow).lower())
    if preset is None:
        raise PipelineError(
            f"unknown flow {flow!r}; named flows: "
            f"{', '.join(NAMED_FLOWS)}"
        )
    return preset


def _resolve_cache(
    cache: Union[PassCache, str, os.PathLike, None]
) -> Optional[PassCache]:
    """Map a cache argument to a PassCache instance (or ``None``).

    ``"shared"`` selects the process-wide cache; any other string or
    path selects a disk-backed cache rooted there.
    """
    if cache is None or isinstance(cache, PassCache):
        return cache
    if cache == "shared":
        return shared_cache()
    return PassCache(path=os.fspath(cache))


def compile(
    workload: Any,
    target: Union[Target, str, None] = None,
    flow: Union[Flow, str, None] = None,
    verify: Union[bool, str, EquivalenceChecker, None] = None,
    cache: Union[PassCache, str, None] = "shared",
    pipeline: Optional[Pipeline] = None,
    deadline: Union[Deadline, float, None] = None,
    retry: Union[RetryPolicy, int, None] = None,
    on_error: Union[str, Dict[str, str], None] = None,
    engine: Optional[str] = None,
) -> CompilationResult:
    """Compile any workload for a target — the one front door.

    Normalizes the workload (:func:`~.frontends.detect_workload`),
    resolves the target to a pass sequence
    (:meth:`~.target.Target.flow`, unless an explicit ``flow`` is
    given), executes it on the pass manager, and returns the bundled
    result.

    Args:
        workload: anything :func:`~.frontends.detect_workload`
            accepts — specification, predicate, expression string,
            generator spec, circuit, or ``None`` with an explicit
            ``flow=`` that generates its own input.
        target: a :class:`~.target.Target`, a registered target name,
            or ``None`` for the default (``clifford_t``).
        flow: explicit :class:`~repro.pipeline.flows.Flow` (or preset
            name ``eq5``/``qsharp``/``device``) overriding target
            resolution.
        verify: fail-fast functional verification of every pass —
            ``"auto"``/``True`` runs the tiered
            :class:`~repro.verify.EquivalenceChecker` (every pass
            record names the tier that checked it), ``"strict"``
            additionally fails on skipped checks, ``"off"``/``False``
            disables, a configured checker is used as-is, and
            ``None`` (default) defers to the target's ``verify``
            field.
        cache: a :class:`~repro.pipeline.cache.PassCache`,
            ``"shared"`` (default) for the process-wide cache, a
            directory path for a disk-backed cache, or ``None``.
        pipeline: explicit pass-manager runner; overrides ``verify``
            and ``cache``.
        deadline: compute budget for the whole compilation — a
            :class:`~repro.resilience.Deadline` or a number of
            seconds; checked cooperatively before every pass, an
            expired budget raises
            :class:`~repro.resilience.DeadlineExceeded` naming the
            flow position.
        retry: :class:`~repro.resilience.RetryPolicy` (or attempt
            count) re-running transiently failing passes when
            ``on_error`` selects ``'retry'``.
        on_error: per-pass failure policy — ``'raise'`` (default),
            ``'retry'``, ``'fallback'`` (run the pass's declared
            alternate), or a dict mapping pass names (and ``'*'``) to
            policies.
        engine: default simulation backend for
            :meth:`~.result.CompilationResult.simulate` — any name or
            alias registered with :mod:`repro.engines`, validated
            here; ``None`` defers to the target's ``engine`` field.

    Returns:
        The :class:`~.result.CompilationResult` with the final
        circuit, per-pass records and lazy emitters.

    Raises:
        PipelineError: when ``pipeline=`` is combined with
            ``deadline``/``retry``/``on_error`` — the explicit runner
            carries its own resilience configuration; ignoring a
            requested deadline silently would be worse than refusing.
    """
    normalized = detect_workload(workload)
    resolved_target = get_target(target)
    if engine is not None:
        try:
            engine = get_engine(engine).name
        except EngineError as exc:
            raise PipelineError(str(exc)) from exc
    if verify is None:
        verify = resolved_target.verify
    resolved_flow = _resolve_flow(flow)
    if resolved_flow is None:
        resolved_flow = resolved_target.flow(normalized)
    else:
        # an explicit flow runs as-is; refuse combinations where it
        # would silently discard the workload instead of compiling it
        if normalized.prelude:
            raise PipelineError(
                f"workload {normalized.description} carries its own "
                f"generator pass, which flow {resolved_flow.name!r} "
                "would not run; drop flow= (let the target resolve "
                "it) or pass workload=None"
            )
        seeded = any(
            getattr(normalized.state, field) is not None
            for field in ("function", "reversible", "quantum")
        )
        if seeded and any(
            "function" in pass_.writes for pass_ in resolved_flow.passes
        ):
            raise PipelineError(
                f"flow {resolved_flow.name!r} generates its own "
                "specification and would overwrite or ignore workload "
                f"{normalized.description}; drop flow= or pass "
                "workload=None"
            )
    if pipeline is not None and (
        deadline is not None or retry is not None or on_error is not None
    ):
        raise PipelineError(
            "compile(pipeline=...) conflicts with deadline=/retry=/"
            "on_error=; configure them on the Pipeline instead"
        )
    if pipeline is None:
        pipeline = Pipeline(
            verify=verify,
            cache=_resolve_cache(cache),
            deadline=deadline,
            retry=retry,
            on_error=on_error,
        )
    outcome = resolved_flow.run(
        normalized.state.copy(), pipeline=pipeline
    )
    return CompilationResult(
        workload=normalized,
        target=resolved_target,
        flow=resolved_flow,
        state=outcome.state,
        records=outcome.records,
        # counters(), not stats(): the per-compile snapshot must never
        # pay a directory scan of the disk tier on the hot path
        cache_stats=(
            pipeline.cache.counters() if pipeline.cache is not None else None
        ),
        engine=engine,
    )


# ----------------------------------------------------------------------
# batched sessions
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    """One grid point: the parameter assignment and its result."""

    params: Dict[str, Any]
    result: CompilationResult


@dataclass
class SweepResult:
    """All points of one parameter sweep, in deterministic grid order."""

    points: List[SweepPoint]

    def __len__(self) -> int:
        """Return the number of swept points."""
        return len(self.points)

    def __iter__(self):
        """Iterate over the :class:`SweepPoint` entries."""
        return iter(self.points)

    @property
    def cache_hits(self) -> int:
        """Return the summed per-pass cache hits across all points."""
        return sum(point.result.cache_hits for point in self.points)

    def best(self, metric: str = "t_count") -> SweepPoint:
        """Return the point minimizing a final-state metric.

        Args:
            metric: a :func:`~repro.pipeline.runner.state_metrics`
                key (``t_count``, ``gates``, ``mct_gates``, ...).

        Returns:
            The minimizing :class:`SweepPoint`.

        Raises:
            PipelineError: when no point reports the metric.
        """
        scored = [
            (point.result.metrics().get(metric), point)
            for point in self.points
        ]
        scored = [(value, point) for value, point in scored if value is not None]
        if not scored:
            raise PipelineError(
                f"no sweep point reports metric {metric!r}"
            )
        return min(scored, key=lambda pair: pair[0])[1]

    def table(self, metric: str = "t_count") -> str:
        """Format the sweep as an aligned params/metric text table."""
        lines = []
        for point in self.points:
            params = ", ".join(
                f"{k}={v}" for k, v in sorted(point.params.items())
            )
            value = point.result.metrics().get(metric)
            lines.append(f"{params:<48} {metric}={value}")
        return "\n".join(lines)


def _compile_task(task: Tuple) -> CompilationResult:
    """Process-pool entry: re-resolve the cache spec and compile.

    A dict spec rebuilds a disk-backed :class:`PassCache` in the
    worker, including the parent's eviction budgets; strings pass
    through :func:`_resolve_cache` unchanged.  The job's deadline
    starts here — in the worker, when the job actually begins — and
    spans every retry attempt, so a retried job cannot outlive its
    ``job_timeout``.
    """
    workload, target, flow, verify, cache_spec, job_timeout, retry = task
    if isinstance(cache_spec, dict):
        cache_spec = PassCache(**cache_spec)
    deadline = (
        Deadline.after(job_timeout) if job_timeout is not None else None
    )
    policy = as_retry(retry)

    def attempt() -> CompilationResult:
        """Run one (possibly retried) dispatch of the job."""
        fault_point("session.dispatch")
        return compile(
            workload,
            target=target,
            flow=flow,
            verify=verify,
            cache=cache_spec,
            deadline=deadline,
        )

    if policy is None:
        return attempt()
    return policy.call(attempt, site="session.dispatch", deadline=deadline)


class CompilerSession:
    """Batched compilations over a shared pass cache.

    Args:
        target: session default target (name or
            :class:`~.target.Target`); ``None`` keeps the library
            default.
        flow: session default flow override.
        verify: fail-fast functional verification of every pass —
            ``"auto"``/``"strict"``/``"off"``, a boolean, a
            configured :class:`~repro.verify.EquivalenceChecker`, or
            ``None`` (default) to defer to each target's ``verify``
            field.
        cache: ``"shared"`` (default), a
            :class:`~repro.pipeline.cache.PassCache`, a directory
            path for a disk-backed cache, or ``None``.
        max_workers: pool size for batched calls (``None`` lets the
            executor decide).
        executor: ``"thread"`` (default; shares the in-memory cache)
            or ``"process"`` (requires picklable workloads; share
            results across processes via a disk-backed ``cache=``
            path).
        job_timeout: session default per-job wall-clock budget in
            seconds for batched calls — a cooperative deadline inside
            each job plus a hard backstop that abandons a worker not
            returning within it; per-call ``job_timeout=`` overrides.
        retry: session default per-job retry — a
            :class:`~repro.resilience.RetryPolicy` or an attempt
            count; transiently failing jobs are re-dispatched within
            their deadline.  (Distinct from per-pass retries, which
            live on :class:`~repro.pipeline.runner.Pipeline` via
            ``on_error='retry'``.)
    """

    def __init__(
        self,
        target: Union[Target, str, None] = None,
        flow: Union[Flow, str, None] = None,
        verify: Union[bool, str, EquivalenceChecker, None] = None,
        cache: Union[PassCache, str, None] = "shared",
        max_workers: Optional[int] = None,
        executor: str = "thread",
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> None:
        """Resolve the session defaults and the shared cache."""
        if executor not in ("thread", "process"):
            raise PipelineError(
                f"unknown executor {executor!r}; expected 'thread' or "
                "'process'"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise PipelineError("job_timeout must be positive or None")
        self.target = get_target(target) if target is not None else None
        self.flow = _resolve_flow(flow)
        self.verify = verify
        self.cache = _resolve_cache(cache)
        self.max_workers = max_workers
        self.executor = executor
        self.job_timeout = (
            float(job_timeout) if job_timeout is not None else None
        )
        # kept as the raw spec (int or policy): process-pool payloads
        # ship it to workers, where as_retry() resolves it
        self.retry = retry
        # what a process-pool task carries to rebuild the cache in the
        # worker: a disk spec (shared tier, with eviction budgets) or
        # "shared"/None; a purely in-memory PassCache cannot cross the
        # process boundary
        if self.cache is not None and self.cache.path is not None:
            self._cache_spec: Union[Dict[str, Any], PassCache, str, None] = {
                "path": self.cache.path,
                "maxsize": self.cache.maxsize,
                "max_entries": self.cache.max_entries,
                "max_bytes": self.cache.max_bytes,
            }
        elif isinstance(cache, PassCache) and executor == "process":
            raise PipelineError(
                "executor='process' cannot share an in-memory "
                "PassCache across workers; pass cache=<directory path> "
                "for a disk-backed cache (or cache='shared' for "
                "independent per-worker caches)"
            )
        else:
            self._cache_spec = cache

    # ------------------------------------------------------------------
    def compile(
        self,
        workload: Any,
        target: Union[Target, str, None] = None,
        flow: Union[Flow, str, None] = None,
    ) -> CompilationResult:
        """Compile one workload with the session's defaults.

        Args:
            workload: any supported workload shape.
            target: per-call target override.
            flow: per-call flow override.

        Returns:
            The :class:`~.result.CompilationResult`.
        """
        return compile(
            workload,
            target=target if target is not None else self.target,
            flow=flow if flow is not None else self.flow,
            verify=self.verify,
            cache=self.cache,
        )

    def _compile_job(
        self,
        task: Tuple[Any, Union[Target, str, None], Union[Flow, None]],
        job_timeout: Optional[float],
        retry: Union[RetryPolicy, int, None],
    ) -> CompilationResult:
        """Run one batch job under its deadline and retry policy.

        The deadline starts here — when the job begins on its worker,
        not when the batch was submitted — and spans every retry
        attempt.
        """
        workload, target, flow = task
        deadline = (
            Deadline.after(job_timeout) if job_timeout is not None else None
        )
        policy = as_retry(retry)

        def attempt() -> CompilationResult:
            """Run one (possibly retried) dispatch of the job."""
            fault_point("session.dispatch")
            return compile(
                workload,
                target=target if target is not None else self.target,
                flow=flow if flow is not None else self.flow,
                verify=self.verify,
                cache=self.cache,
                deadline=deadline,
            )

        if policy is None:
            return attempt()
        return policy.call(
            attempt, site="session.dispatch", deadline=deadline
        )

    def _collect(
        self, futures: List, job_timeout: Optional[float]
    ) -> List[CompilationResult]:
        """Await batch futures in input order (deterministic results).

        With a ``job_timeout``, each wait carries a hard backstop: a
        job whose worker does not return within the timeout (plus a
        small grace so the cooperative in-job deadline fires first
        with its precise flow position) raises
        :class:`~repro.resilience.DeadlineExceeded` and the worker is
        abandoned — never joined, never waited on.
        """
        results = []
        for index, future in enumerate(futures):
            if job_timeout is None:
                results.append(future.result())
                continue
            try:
                results.append(
                    future.result(
                        timeout=job_timeout + _JOB_TIMEOUT_GRACE
                    )
                )
            except FuturesTimeout:
                future.cancel()
                raise DeadlineExceeded(
                    f"session.job[{index}]: no result within the "
                    f"{job_timeout:g}s job timeout (worker abandoned)",
                    site="session.job",
                ) from None
        return results

    def _run_batch(
        self,
        tasks: List[Tuple[Any, Union[Target, str, None], Union[Flow, None]]],
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> List[CompilationResult]:
        """Fan a list of (workload, target, flow) tasks over the pool.

        Results come back in task order regardless of completion
        order, so batched runs are deterministic.  The first failing
        (or hard-timed-out) job fails the batch: queued jobs are
        cancelled, and the pool is shut down without joining hung
        workers when a ``job_timeout`` is in force.
        """
        if not tasks:
            return []
        job_timeout = (
            job_timeout if job_timeout is not None else self.job_timeout
        )
        retry = retry if retry is not None else self.retry
        if len(tasks) == 1 and job_timeout is None:
            # fast path: no backstop needed without a timeout, so the
            # job can run on the calling thread
            return [self._compile_job(tasks[0], None, retry)]
        if self.executor == "process":
            payload = [
                (w, t, f, self.verify, self._cache_spec, job_timeout, retry)
                for w, t, f in tasks
            ]
            pool: Union[ProcessPoolExecutor, ThreadPoolExecutor]
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
            try:
                futures = [
                    pool.submit(_compile_task, item) for item in payload
                ]
                return self._collect(futures, job_timeout)
            finally:
                pool.shutdown(
                    wait=job_timeout is None, cancel_futures=True
                )
        max_workers = self.max_workers or min(len(tasks), 8)
        pool = ThreadPoolExecutor(max_workers=max_workers)
        try:
            futures = [
                pool.submit(self._compile_job, task, job_timeout, retry)
                for task in tasks
            ]
            return self._collect(futures, job_timeout)
        finally:
            # wait=False under a job timeout: joining the pool here
            # would block on the very worker the backstop abandoned
            pool.shutdown(wait=job_timeout is None, cancel_futures=True)

    async def _run_batch_async(
        self,
        tasks: List[Tuple[Any, Union[Target, str, None], Union[Flow, None]]],
        max_in_flight: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> List[CompilationResult]:
        """Fan (workload, target, flow) tasks out on the event loop.

        Each task becomes one future on the running loop, executed on
        a private thread (or process) pool; an
        :class:`asyncio.Semaphore` bounds how many are in flight at
        once.  Results are gathered in task order (deterministic), the
        first failing job cancels the not-yet-started ones and
        re-raises its exception unwrapped, and an outer cancellation
        propagates to every pending job.  Already-running jobs finish
        on their worker in the background; their results are
        discarded.  A ``job_timeout`` bounds each job cooperatively
        inside the worker and with an :func:`asyncio.wait_for` hard
        backstop around it, surfaced as
        :class:`~repro.resilience.DeadlineExceeded`.
        """
        if not tasks:
            return []
        job_timeout = (
            job_timeout if job_timeout is not None else self.job_timeout
        )
        retry = retry if retry is not None else self.retry
        loop = asyncio.get_running_loop()
        limit = max_in_flight or self.max_workers or min(len(tasks), 8)
        semaphore = asyncio.Semaphore(limit)
        if self.executor == "process":
            pool: Union[ProcessPoolExecutor, ThreadPoolExecutor]
            pool = ProcessPoolExecutor(max_workers=self.max_workers or limit)

            def submit(task):
                """Ship one task to a worker process."""
                workload, target, flow = task
                payload = (
                    workload, target, flow, self.verify, self._cache_spec,
                    job_timeout, retry,
                )
                return loop.run_in_executor(pool, _compile_task, payload)

        else:
            pool = ThreadPoolExecutor(max_workers=limit)

            def submit(task):
                """Run one task on the shared-cache thread pool."""
                call = functools.partial(
                    self._compile_job, task, job_timeout, retry
                )
                return loop.run_in_executor(pool, call)

        async def run_one(index, task):
            """Await one job under the in-flight semaphore."""
            async with semaphore:
                future = submit(task)
                if job_timeout is None:
                    return await future
                try:
                    return await asyncio.wait_for(
                        future, timeout=job_timeout + _JOB_TIMEOUT_GRACE
                    )
                except asyncio.TimeoutError:
                    raise DeadlineExceeded(
                        f"session.job[{index}]: no result within the "
                        f"{job_timeout:g}s job timeout (worker "
                        "abandoned)",
                        site="session.job",
                    ) from None

        jobs = [
            asyncio.ensure_future(run_one(index, task))
            for index, task in enumerate(tasks)
        ]
        try:
            return await asyncio.gather(*jobs)
        except BaseException:
            # first failure (or outer cancellation): cancel every job
            # not yet handed to the executor and reap the wrappers.
            # Jobs already running on a worker cannot be interrupted —
            # they finish in the background and their results are
            # discarded (at most max_in_flight of them).
            for job in jobs:
                job.cancel()
            await asyncio.gather(*jobs, return_exceptions=True)
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def compile_many(
        self,
        workloads: Sequence[Any],
        target: Union[Target, str, None] = None,
        flow: Union[Flow, str, None] = None,
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> List[CompilationResult]:
        """Compile a batch of workloads over the session's pool.

        Results are returned in workload order regardless of
        completion order, so batched runs are deterministic.

        Args:
            workloads: the workload batch.
            target: per-batch target override.
            flow: per-batch flow override.
            job_timeout: per-job wall-clock budget in seconds
                (overrides the session default) — a cooperative
                deadline inside each job plus a hard backstop; a job
                exceeding it raises
                :class:`~repro.resilience.DeadlineExceeded` and fails
                the batch.
            retry: per-job retry override — a
                :class:`~repro.resilience.RetryPolicy` or attempt
                count re-dispatching transiently failing jobs.

        Returns:
            One :class:`~.result.CompilationResult` per workload, in
            input order.
        """
        target = target if target is not None else self.target
        flow = flow if flow is not None else self.flow
        return self._run_batch(
            [(w, target, flow) for w in workloads],
            job_timeout=job_timeout,
            retry=retry,
        )

    async def compile_many_async(
        self,
        workloads: Sequence[Any],
        target: Union[Target, str, None] = None,
        flow: Union[Flow, str, None] = None,
        max_in_flight: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> List[CompilationResult]:
        """Compile a batch of workloads on the asyncio event loop.

        Like :meth:`compile_many`, but awaitable: independent
        compilations overlap (each job is its own future on the
        running loop) while a semaphore caps how many are in flight.
        Results come back in workload order; the first failing job
        cancels the rest and its exception propagates unwrapped;
        cancelling the returned coroutine cancels every pending job.

        Args:
            workloads: the workload batch.
            target: per-batch target override.
            flow: per-batch flow override.
            max_in_flight: in-flight concurrency bound (defaults to
                the session's ``max_workers``, else ``min(len, 8)``).
            job_timeout: per-job wall-clock budget in seconds (see
                :meth:`compile_many`).
            retry: per-job retry override (see :meth:`compile_many`).

        Returns:
            One :class:`~.result.CompilationResult` per workload, in
            input order.
        """
        target = target if target is not None else self.target
        flow = flow if flow is not None else self.flow
        return await self._run_batch_async(
            [(w, target, flow) for w in workloads],
            max_in_flight=max_in_flight,
            job_timeout=job_timeout,
            retry=retry,
        )

    # ------------------------------------------------------------------
    def _sweep_point(
        self, params: Dict[str, Any], base: Any
    ) -> Tuple[Any, Union[Target, None]]:
        """Translate one grid assignment into (workload, target)."""
        params = dict(params)
        target = params.pop("target", None)
        target = get_target(target if target is not None else self.target)
        overrides = {
            key: params.pop(key)
            for key in tuple(params)
            if key in _TARGET_FIELDS
        }
        if overrides:
            target = target.with_(**overrides)
        family_keys = [k for k in params if k in GENERATOR_KINDS]
        if family_keys:
            spec = {k: params.pop(k) for k in family_keys}
            spec.update(
                {
                    k: params.pop(k)
                    for k in tuple(params)
                    if k in _GENERATOR_OPTION_KEYS
                }
            )
            workload = spec
        else:
            workload = base
        if params:
            raise PipelineError(
                f"unknown sweep parameter(s) {sorted(params)}; valid "
                "keys are target fields "
                f"({', '.join(_TARGET_FIELDS)}), generator families "
                f"({', '.join(GENERATOR_KINDS)}), their options "
                f"({', '.join(_GENERATOR_OPTION_KEYS)}), and 'target'"
            )
        if workload is None:
            raise PipelineError(
                "sweep point selects no workload: pass base= or "
                "include a generator family key in the grid"
            )
        return workload, target

    def sweep(
        self,
        param_grid: Dict[str, Sequence[Any]],
        base: Any = None,
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> SweepResult:
        """Compile the cartesian product of a parameter grid.

        Grid keys may be generator families (``hwb``, ``adder``, ...)
        with their options (``seed``, ``const``, ``amount``) selecting
        the workload per point, any :class:`~.target.Target` field
        (``synthesis``, ``optimization_level``, ``relative_phase``,
        ``coupling``, ...) deriving a per-point target, or ``target``
        naming a registered target.  Points run over the session pool
        with the shared cache, so sub-flows repeated across points
        (e.g. the same generated specification under two synthesis
        methods) replay as cache hits.

        Args:
            param_grid: mapping of parameter name to the values to
                sweep; the product is enumerated in sorted-key order,
                so results are deterministic.
            base: workload for points that do not select one via
                generator keys.
            job_timeout: per-point wall-clock budget in seconds (see
                :meth:`compile_many`).
            retry: per-point retry override (see
                :meth:`compile_many`).

        Returns:
            The :class:`SweepResult`, one point per grid assignment.

        Raises:
            PipelineError: when the session carries a ``flow=``
                override — an explicit flow bypasses per-point target
                resolution, so the sweep parameters would silently
                not apply.
        """
        assignments, tasks = self._sweep_tasks(param_grid, base)
        results = self._run_batch(
            tasks, job_timeout=job_timeout, retry=retry
        )
        return SweepResult(
            points=[
                SweepPoint(params=assignment, result=result)
                for assignment, result in zip(assignments, results)
            ]
        )

    async def sweep_async(
        self,
        param_grid: Dict[str, Sequence[Any]],
        base: Any = None,
        max_in_flight: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retry: Union[RetryPolicy, int, None] = None,
    ) -> SweepResult:
        """Sweep a parameter grid on the asyncio event loop.

        Same grid semantics and deterministic point order as
        :meth:`sweep`, executed like
        :meth:`compile_many_async` — overlapped futures under a
        bounded semaphore, fail-fast exception propagation, and
        cooperative cancellation.

        Args:
            param_grid: mapping of parameter name to values to sweep.
            base: workload for points not selecting one via generator
                keys.
            max_in_flight: in-flight concurrency bound (defaults to
                the session's ``max_workers``, else ``min(len, 8)``).
            job_timeout: per-point wall-clock budget in seconds (see
                :meth:`compile_many`).
            retry: per-point retry override (see
                :meth:`compile_many`).

        Returns:
            The :class:`SweepResult`, one point per grid assignment.

        Raises:
            PipelineError: when the session carries a ``flow=``
                override (see :meth:`sweep`).
        """
        assignments, tasks = self._sweep_tasks(param_grid, base)
        results = await self._run_batch_async(
            tasks,
            max_in_flight=max_in_flight,
            job_timeout=job_timeout,
            retry=retry,
        )
        return SweepResult(
            points=[
                SweepPoint(params=assignment, result=result)
                for assignment, result in zip(assignments, results)
            ]
        )

    def _sweep_tasks(
        self, param_grid: Dict[str, Sequence[Any]], base: Any
    ) -> Tuple[List[Dict[str, Any]], List[Tuple]]:
        """Expand a grid into (assignments, batch tasks), in order."""
        if self.flow is not None:
            raise PipelineError(
                "cannot sweep on a session with a flow= override: the "
                "explicit flow bypasses per-point target resolution, "
                "so the sweep parameters would not apply; create a "
                "session without flow= (or sweep 'target'/'synthesis' "
                "parameters instead)"
            )
        keys = sorted(param_grid)
        combos = list(
            itertools.product(*(list(param_grid[k]) for k in keys))
        )
        assignments = [dict(zip(keys, combo)) for combo in combos]
        tasks = [
            self._sweep_point(assignment, base) + (None,)
            for assignment in assignments
        ]
        return assignments, tasks

    def cache_stats(self) -> Dict[str, int]:
        """Return the shared cache's entry/hit/miss/eviction counters."""
        if self.cache is None:
            return {
                "entries": 0,
                "hits": 0,
                "misses": 0,
                "disk_hits": 0,
                "evictions": 0,
                "memory_evictions": 0,
                "disk_evictions": 0,
                "io_errors": 0,
                "memory_io_errors": 0,
                "disk_io_errors": 0,
                "retries": 0,
                "quarantined": 0,
                "degraded": 0,
                "disk_entries": 0,
                "disk_bytes": 0,
            }
        return self.cache.stats()

"""Bernstein–Vazirani via the compiled phase oracle.

For ``f(x) = a.x ^ b`` the H–oracle–H sandwich returns ``a`` in one
query.  The oracle is compiled from the truth table through the same
ESOP path as every other oracle in the flow — for a linear function the
minimized cover is exactly one single-literal cube per set bit of
``a``, i.e. a layer of Z gates, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..simulator.statevector import StatevectorSimulator
from .hidden_shift import phase_oracle_circuit


def linear_function(num_vars: int, a: int, b: int = 0) -> TruthTable:
    """Truth table of f(x) = a.x ^ b."""
    table = TruthTable(num_vars)
    for x in range(1 << num_vars):
        if (bin(x & a).count("1") & 1) ^ b:
            table.bits |= 1 << x
    return table


@dataclass
class BernsteinVaziraniResult:
    recovered: int
    expected: int
    success: bool
    circuit: QuantumCircuit


def bernstein_vazirani_circuit(table: TruthTable) -> QuantumCircuit:
    """Build the Bernstein–Vazirani circuit for a (linear) oracle.

    Args:
        table: the oracle truth table; for f(x) = s.x the measured
            bitstring is the hidden string ``s``.

    Returns:
        The H — phase-oracle — H circuit with final measurements.
    """
    n = table.num_vars
    circuit = QuantumCircuit(n, n, name="bernstein-vazirani")
    for q in range(n):
        circuit.h(q)
    circuit.compose(phase_oracle_circuit(table, n))
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


def solve_bernstein_vazirani(
    num_vars: int, a: int, b: int = 0, seed: Optional[int] = None
) -> BernsteinVaziraniResult:
    """Recover the mask ``a`` of a linear Boolean function in 1 query."""
    table = linear_function(num_vars, a, b)
    circuit = bernstein_vazirani_circuit(table)
    result = StatevectorSimulator(seed=seed).run(circuit, shots=1)
    measured = result.most_frequent()
    return BernsteinVaziraniResult(
        recovered=measured,
        expected=a,
        success=measured == a,
        circuit=circuit,
    )

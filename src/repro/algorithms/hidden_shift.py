"""The Boolean hidden shift algorithm (Sec. VI, Fig. 3).

Given oracle access to ``g(x) = f(x ^ s)`` and to the dual bent
function ``f~``, the circuit

    |0^n>  --H^n--  U_g  --H^n--  U_f~  --H^n--  measure --> |s>

recovers the hidden shift deterministically with a single query to
each oracle (for perfect gates).

Two oracle constructions are provided, matching the paper's two
examples:

* ``method="truth_table"`` — ESOP-compiled phase oracles of the
  explicit tables of ``g`` and ``f~`` (the Fig. 4 flow);
* ``method="mm"`` — the structured Maiorana–McFarland realization of
  Fig. 7/8: the permutation pi is synthesized as a reversible circuit
  (default: transformation-based for U_g, decomposition-based for the
  inverse, as in the paper), conjugating an inner-product CZ layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..boolean.bent import HiddenShiftInstance, MaioranaMcFarland
from ..boolean.esop import minimize_esop
from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..frameworks.projectq.oracles import (
    permutation_oracle_gates,
    phase_oracle_gates,
)
from ..simulator.statevector import StatevectorSimulator
from ..synthesis.reversible import ReversibleCircuit

SynthesisFn = Callable[[BitPermutation], ReversibleCircuit]


def _synthesize_permutation(
    permutation: BitPermutation,
    synth: Optional[SynthesisFn],
    default: str,
) -> ReversibleCircuit:
    """Synthesize an oracle permutation through the compiler facade.

    With no explicit ``synth`` callable the cascade is compiled via
    ``repro.compile`` at the raw reversible level (no simplification),
    which is gate-for-gate what calling the synthesis entry point
    directly produced — but repeated oracle builds for the same
    permutation now replay from the shared pass cache.
    """
    if synth is not None:
        return synth(permutation)
    from ..compiler import compile as facade_compile, targets

    result = facade_compile(
        permutation,
        target=targets.TOFFOLI.with_(
            optimization_level=0, synthesis=default
        ),
    )
    return result.reversible


@dataclass
class HiddenShiftCircuit:
    """Built circuit plus query bookkeeping."""

    circuit: QuantumCircuit
    instance: HiddenShiftInstance
    g_queries: int
    dual_queries: int
    method: str


def phase_oracle_circuit(
    table: TruthTable, num_qubits: int, wires: Optional[Sequence[int]] = None,
    effort: str = "medium",
) -> QuantumCircuit:
    """Diagonal circuit for ``(-1)^{table(x)}`` on the given wires."""
    if wires is None:
        wires = list(range(table.num_vars))
    circuit = QuantumCircuit(num_qubits)
    cubes = minimize_esop(table, effort=effort)
    circuit.extend(phase_oracle_gates(cubes, list(wires)))
    return circuit


def hidden_shift_circuit(
    instance: HiddenShiftInstance,
    method: str = "truth_table",
    synth: Optional[SynthesisFn] = None,
    inverse_synth: Optional[SynthesisFn] = None,
) -> HiddenShiftCircuit:
    """Build the Fig. 3 circuit for a hidden shift instance."""
    n = instance.num_vars
    circuit = QuantumCircuit(n, n, name=f"hidden-shift-{method}")

    def hadamard_layer() -> None:
        for q in range(n):
            circuit.h(q)

    hadamard_layer()
    if method == "truth_table":
        circuit.compose(phase_oracle_circuit(instance.g_table(), n))
    elif method == "mm":
        _mm_shifted_oracle(circuit, instance, synth)
    else:
        raise ValueError(f"unknown method {method!r}")
    hadamard_layer()
    if method == "truth_table":
        circuit.compose(phase_oracle_circuit(instance.dual_table(), n))
    else:
        _mm_dual_oracle(circuit, instance, inverse_synth)
    hadamard_layer()
    for q in range(n):
        circuit.measure(q, q)
    return HiddenShiftCircuit(
        circuit=circuit,
        instance=instance,
        g_queries=1,
        dual_queries=1,
        method=method,
    )


def _x_layer(circuit: QuantumCircuit, mask: int, wires: Sequence[int]) -> None:
    for i, wire in enumerate(wires):
        if (mask >> i) & 1:
            circuit.x(wire)


def _cz_layer(
    circuit: QuantumCircuit, x_wires: Sequence[int], y_wires: Sequence[int]
) -> None:
    for xw, yw in zip(x_wires, y_wires):
        circuit.cz(xw, yw)


def _mm_shifted_oracle(
    circuit: QuantumCircuit,
    instance: HiddenShiftInstance,
    synth: Optional[SynthesisFn],
) -> None:
    """U_g = X^s U_f X^s with the structured MM realization of U_f.

    U_f on |x>|y>: phase h(y), then map y -> pi(y), CZ layer
    (-1)^{x . y'}, then map back: total (-1)^{x.pi(y) ^ h(y)}.
    """
    mm = instance.function
    half = mm.half_vars
    x_wires = list(range(half))
    y_wires = list(range(half, 2 * half))
    perm_circuit = _synthesize_permutation(mm.pi, synth, "tbs")
    all_wires = x_wires + y_wires

    _x_layer(circuit, instance.shift, all_wires)
    if mm.h.bits:
        circuit.compose(
            phase_oracle_circuit(mm.h, circuit.num_qubits, wires=y_wires)
        )
    circuit.extend(permutation_oracle_gates(perm_circuit, y_wires))
    _cz_layer(circuit, x_wires, y_wires)
    # invert the permutation by replaying the same gates in reverse
    circuit.extend(
        reversed(permutation_oracle_gates(perm_circuit, y_wires))
    )
    _x_layer(circuit, instance.shift, all_wires)


def _mm_dual_oracle(
    circuit: QuantumCircuit,
    instance: HiddenShiftInstance,
    inverse_synth: Optional[SynthesisFn],
) -> None:
    """U_f~ via pi^{-1} on the x register (Fig. 7's second block).

    Following the paper, a circuit for pi is synthesized (by default
    with decomposition-based synthesis) and *inverted with Dagger*
    instead of synthesizing pi^{-1} directly.
    """
    mm = instance.function
    half = mm.half_vars
    x_wires = list(range(half))
    y_wires = list(range(half, 2 * half))
    perm_circuit = _synthesize_permutation(mm.pi, inverse_synth, "dbs")
    inverse_gates = list(
        reversed(permutation_oracle_gates(perm_circuit, x_wires))
    )
    forward_gates = permutation_oracle_gates(perm_circuit, x_wires)

    circuit.extend(inverse_gates)  # x -> pi^{-1}(x)
    if mm.h.bits:
        circuit.compose(
            phase_oracle_circuit(mm.h, circuit.num_qubits, wires=x_wires)
        )
    _cz_layer(circuit, x_wires, y_wires)
    circuit.extend(forward_gates)


@dataclass
class HiddenShiftResult:
    """Outcome of a hidden shift run."""

    measured_shift: int
    expected_shift: int
    success: bool
    probability: float
    built: HiddenShiftCircuit


def solve_hidden_shift(
    instance: HiddenShiftInstance,
    method: str = "truth_table",
    seed: Optional[int] = None,
    synth: Optional[SynthesisFn] = None,
    inverse_synth: Optional[SynthesisFn] = None,
) -> HiddenShiftResult:
    """Build and simulate the circuit; noiseless runs are deterministic."""
    built = hidden_shift_circuit(
        instance, method=method, synth=synth, inverse_synth=inverse_synth
    )
    simulator = StatevectorSimulator(seed=seed)
    result = simulator.run(built.circuit, shots=1)
    measured = result.most_frequent()
    probability = _shift_probability(built.circuit, instance.shift)
    return HiddenShiftResult(
        measured_shift=measured,
        expected_shift=instance.shift,
        success=measured == instance.shift,
        probability=probability,
        built=built,
    )


def _shift_probability(circuit: QuantumCircuit, shift: int) -> float:
    """Exact probability of measuring the correct shift."""
    unitary_part = QuantumCircuit(circuit.num_qubits)
    for gate in circuit.gates:
        if gate.is_measurement or gate.name == "barrier":
            continue
        unitary_part.append(gate)
    state = StatevectorSimulator().statevector(unitary_part)
    return state.probability_of(shift)


def deterministic_success_sweep(
    half_vars: int, trials: int, seed: int = 0, method: str = "truth_table"
) -> List[HiddenShiftResult]:
    """Random-instance sweep (the paper's determinism claim)."""
    results = []
    for trial in range(trials):
        instance = HiddenShiftInstance.random(
            half_vars, seed=seed + trial
        )
        results.append(solve_hidden_shift(instance, method=method))
    return results

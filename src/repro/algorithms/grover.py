"""Grover search with automatically compiled predicate oracles.

Sec. I cites Grover's algorithm [5] and the substantial cost of
"implementing the defining predicate in a reversible way" [6]; this
module closes that loop: the predicate is an arbitrary Python function
or truth table, compiled to a phase oracle by the ESOP flow, wrapped in
the standard diffusion operator, and iterated ``~ pi/4 sqrt(N/M)``
times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..simulator.statevector import StatevectorSimulator
from .hidden_shift import phase_oracle_circuit


def diffusion_circuit(num_qubits: int) -> QuantumCircuit:
    """The inversion-about-the-mean operator 2|s><s| - I."""
    circuit = QuantumCircuit(num_qubits, name="diffusion")
    for q in range(num_qubits):
        circuit.h(q)
        circuit.x(q)
    # multi-controlled Z on all qubits
    circuit.mcz(list(range(num_qubits - 1)), num_qubits - 1)
    for q in range(num_qubits):
        circuit.x(q)
        circuit.h(q)
    return circuit


def optimal_iterations(num_vars: int, num_solutions: int) -> int:
    """floor(pi/4 sqrt(N/M)), at least 1."""
    if num_solutions <= 0:
        raise ValueError("need at least one solution")
    ratio = (1 << num_vars) / num_solutions
    return max(1, int(math.floor(math.pi / 4 * math.sqrt(ratio))))


def grover_circuit(
    table: TruthTable, iterations: Optional[int] = None
) -> QuantumCircuit:
    """Build the Grover search circuit for a truth-table oracle.

    Args:
        table: marks the solutions (f(x) = 1).
        iterations: Grover iteration count; the amplitude-optimal
            count for the table's solution density when omitted.

    Returns:
        The prepared circuit with final measurements on all qubits.
    """
    n = table.num_vars
    if iterations is None:
        iterations = optimal_iterations(n, max(table.count_ones(), 1))
    circuit = QuantumCircuit(n, n, name="grover")
    for q in range(n):
        circuit.h(q)
    oracle = phase_oracle_circuit(table, n)
    diffusion = diffusion_circuit(n)
    for _ in range(iterations):
        circuit.compose(oracle)
        circuit.compose(diffusion)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


@dataclass
class GroverResult:
    measured: int
    is_solution: bool
    success_probability: float
    iterations: int
    circuit: QuantumCircuit


def solve_grover(
    predicate: Union[Callable, TruthTable],
    num_vars: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: Optional[int] = None,
) -> GroverResult:
    """Search for an input satisfying ``predicate``.

    The predicate is normalized through the compiler facade's
    frontend layer, so any function-shaped workload
    :func:`repro.compile` accepts works here too: a truth table, a
    Python predicate, a Boolean expression string, an ESOP cube list,
    or a ``(Bdd, node)`` pair.
    """
    from ..compiler.frontends import as_truth_table

    table = as_truth_table(predicate, num_vars)
    if table.bits == 0:
        raise ValueError("predicate has no satisfying assignment")
    if iterations is None:
        iterations = optimal_iterations(table.num_vars, table.count_ones())
    circuit = grover_circuit(table, iterations)
    simulator = StatevectorSimulator(seed=seed)
    result = simulator.run(circuit, shots=1)
    measured = result.most_frequent()
    # exact success probability from the final state
    unitary_part = QuantumCircuit(circuit.num_qubits)
    for gate in circuit.gates:
        if not gate.is_measurement:
            unitary_part.append(gate)
    state = StatevectorSimulator().statevector(unitary_part)
    probability = sum(
        state.probability_of(x)
        for x in range(table.size)
        if table(x)
    )
    return GroverResult(
        measured=measured,
        is_solution=bool(table(measured)),
        success_probability=probability,
        iterations=iterations,
        circuit=circuit,
    )

"""Quantum algorithms built on the compilation flow."""

from .bernstein_vazirani import (
    BernsteinVaziraniResult,
    bernstein_vazirani_circuit,
    linear_function,
    solve_bernstein_vazirani,
)
from .deutsch_jozsa import (
    DeutschJozsaResult,
    deutsch_jozsa_circuit,
    solve_deutsch_jozsa,
)
from .grover import (
    GroverResult,
    diffusion_circuit,
    grover_circuit,
    optimal_iterations,
    solve_grover,
)
from .simon import SimonInstance, SimonResult, simon_circuit, solve_simon
from .hidden_shift import (
    HiddenShiftCircuit,
    HiddenShiftResult,
    deterministic_success_sweep,
    hidden_shift_circuit,
    phase_oracle_circuit,
    solve_hidden_shift,
)

__all__ = [
    "BernsteinVaziraniResult",
    "bernstein_vazirani_circuit",
    "linear_function",
    "solve_bernstein_vazirani",
    "DeutschJozsaResult",
    "deutsch_jozsa_circuit",
    "solve_deutsch_jozsa",
    "GroverResult",
    "diffusion_circuit",
    "grover_circuit",
    "optimal_iterations",
    "solve_grover",
    "SimonInstance",
    "SimonResult",
    "simon_circuit",
    "solve_simon",
    "HiddenShiftCircuit",
    "HiddenShiftResult",
    "deterministic_success_sweep",
    "hidden_shift_circuit",
    "phase_oracle_circuit",
    "solve_hidden_shift",
]

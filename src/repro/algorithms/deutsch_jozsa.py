"""Deutsch–Jozsa on the same compilation flow.

A second consumer of the automatic oracle compilation (the paper's
Sec. I motivates the flow with oracle-based algorithms): given a
promise that ``f`` is constant or balanced, one query to the
ESOP-compiled phase oracle decides which, by measuring all-zeros iff
``f`` is constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..simulator.statevector import StatevectorSimulator
from .hidden_shift import phase_oracle_circuit


@dataclass
class DeutschJozsaResult:
    verdict: str          # "constant" or "balanced"
    measured: int
    circuit: QuantumCircuit


def deutsch_jozsa_circuit(table: TruthTable) -> QuantumCircuit:
    """H^n . U_f(phase) . H^n . measure."""
    n = table.num_vars
    circuit = QuantumCircuit(n, n, name="deutsch-jozsa")
    for q in range(n):
        circuit.h(q)
    circuit.compose(phase_oracle_circuit(table, n))
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


def solve_deutsch_jozsa(
    table: TruthTable, seed: Optional[int] = None
) -> DeutschJozsaResult:
    """Decide constant vs balanced with a single oracle query.

    Raises ValueError if the promise is violated.
    """
    if not (table.is_constant() or table.is_balanced()):
        raise ValueError("function is neither constant nor balanced")
    circuit = deutsch_jozsa_circuit(table)
    result = StatevectorSimulator(seed=seed).run(circuit, shots=1)
    measured = result.most_frequent()
    verdict = "constant" if measured == 0 else "balanced"
    return DeutschJozsaResult(verdict, measured, circuit)

"""Simon's problem on the XOR-oracle (Bennett) compilation path.

The hidden shift algorithm uses *phase* oracles; Simon's algorithm
exercises the other oracle style the paper's Sec. V compiles —
``U|x>|y> = |x>|y ^ f(x)>`` via ESOP-based reversible synthesis.

Given a 2-to-1 function with ``f(x) = f(x ^ s)``, each run of

    H^n (x) I ; U_f ; H^n (x) I ; measure x-register

yields a uniformly random ``z`` with ``z . s = 0``.  Collecting
``n - 1`` independent equations and solving over GF(2) recovers ``s``
with O(n) quantum queries — exponentially fewer than classical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..boolean.truth_table import MultiTruthTable, TruthTable
from ..core.circuit import QuantumCircuit
from ..simulator.statevector import StatevectorSimulator
from ..synthesis.esop_based import esop_synthesis


@dataclass(frozen=True)
class SimonInstance:
    """A 2-to-1 function f with hidden XOR mask s."""

    function: MultiTruthTable
    secret: int

    @classmethod
    def random(cls, num_bits: int, seed: Optional[int] = None) -> "SimonInstance":
        """Random instance: pair up x and x^s, assign distinct values."""
        rng = random.Random(seed)
        secret = rng.randrange(1, 1 << num_bits)
        values = {}
        available = list(range(1 << num_bits))
        rng.shuffle(available)
        next_value = iter(available)
        for x in range(1 << num_bits):
            if x not in values:
                value = next(next_value)
                values[x] = value
                values[x ^ secret] = value
        tables = MultiTruthTable.from_function(
            num_bits, num_bits, lambda x: values[x]
        )
        return cls(tables, secret)

    def verify_promise(self) -> bool:
        image = self.function.image()
        for x in range(len(image)):
            if image[x] != image[x ^ self.secret]:
                return False
        # 2-to-1 (secret != 0)
        return len(set(image)) == len(image) // 2


def simon_circuit(instance: SimonInstance) -> QuantumCircuit:
    """One sampling round: H / U_f (compiled by ESOP synthesis) / H."""
    n = instance.function.num_vars
    oracle = esop_synthesis(instance.function)
    circuit = QuantumCircuit(oracle.num_lines, n, name="simon")
    for q in range(n):
        circuit.h(q)
    # XOR oracle lowered from the MCT network
    for mct in oracle.gates:
        negatives = [
            line
            for line, positive in zip(mct.controls, mct.polarity)
            if not positive
        ]
        for line in negatives:
            circuit.x(line)
        circuit.mcx(list(mct.controls), mct.target)
        for line in negatives:
            circuit.x(line)
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q, q)
    return circuit


def _solve_nullspace(equations: List[int], num_bits: int) -> Optional[int]:
    """The unique nonzero s with z.s = 0 for all z, if rank = n-1."""
    basis: List[int] = []
    for vector in equations:
        value = vector
        for row in basis:
            value = min(value, value ^ row)
        if value:
            basis.append(value)
            basis.sort(reverse=True)
    if len(basis) < num_bits - 1:
        return None
    # find s orthogonal to all basis vectors by trying all... no:
    # solve by Gaussian elimination over the dual space
    for candidate in range(1, 1 << num_bits):
        if all(bin(candidate & row).count("1") % 2 == 0 for row in basis):
            return candidate
    return None


@dataclass
class SimonResult:
    recovered: Optional[int]
    expected: int
    success: bool
    quantum_queries: int
    equations: List[int]


def solve_simon(
    instance: SimonInstance,
    seed: Optional[int] = None,
    max_rounds: int = 200,
) -> SimonResult:
    """Sample orthogonality equations until the secret is determined."""
    n = instance.function.num_vars
    circuit = simon_circuit(instance)
    simulator = StatevectorSimulator(seed=seed)
    # draw the sample budget in one batch (one simulation, many shots)
    batch = simulator.run(circuit, shots=max_rounds)
    samples: List[int] = []
    for outcome, count in batch.counts.items():
        samples.extend([outcome] * count)
    rng = random.Random(seed)
    rng.shuffle(samples)

    equations: List[int] = []
    queries = 0
    for outcome in samples:
        queries += 1
        if outcome:
            equations.append(outcome)
        solution = _solve_nullspace(equations, n)
        if solution is not None:
            return SimonResult(
                recovered=solution,
                expected=instance.secret,
                success=solution == instance.secret,
                quantum_queries=queries,
                equations=equations,
            )
    return SimonResult(None, instance.secret, False, queries, equations)

"""Unified emission subsystem: one registry for every output format.

The paper's central claim (Sec. I) is that one design-automation flow
retargets reversible logic onto many quantum programming frameworks —
Q#, ProjectQ, device-level gate sets.  This package is that claim's
emission half: every output format is an :class:`~.base.Emitter`
behind one registry, so ``Target.emitter``,
``CompilationResult.emit``, ``python -m repro compile --emit``, the
RevKit shell's ``write_*`` commands and path-based workload import all
resolve formats the same way.

Built-in backends (``formats()`` order):

* ``qasm2`` — OpenQASM 2.0, with round-trip ``parse``;
* ``qasm3`` — OpenQASM 3.0 (stdgates.inc, ``ctrl @`` modifiers);
* ``qsharp`` — the Fig. 10 Q# operation, with ``parse``;
* ``projectq`` — ProjectQ eDSL replay script;
* ``cirq`` — cirq circuit-building Python script;
* ``qir`` — textual LLVM IR against the base-profile QIS.

Adding a backend is one :func:`register` call with any object carrying
``name`` / ``description`` / ``file_extension`` / ``emit`` (and an
optional ``parse``); it immediately shows up in every listing above.
"""

from .base import Emitter, EmitterError, can_parse
from .registry import (
    describe_formats,
    emit,
    emitter_for_path,
    formats,
    get,
    parse,
    parseable_formats,
    register,
    unregister,
)

__all__ = [
    "Emitter",
    "EmitterError",
    "can_parse",
    "describe_formats",
    "emit",
    "emitter_for_path",
    "formats",
    "get",
    "parse",
    "parseable_formats",
    "register",
    "unregister",
]

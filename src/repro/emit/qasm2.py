"""OpenQASM 2.0 backend: export *and* round-trip import.

The paper positions QASM/OpenQASM as the "assembly language" of quantum
computing (Sec. II).  The exporter emits standard ``qelib1.inc``
vocabulary; mcx/mcz gates must be mapped to Clifford+T (or at least to
ccx) before export.  The importer supports the subset the exporter
emits, which is enough for round-trip tests (emit → parse → emit is a
fixed point) and for feeding external tools.

This module is the implementation behind the ``qasm2`` registry entry;
``repro.core.qasm`` forwards here as a deprecation shim.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, List, Tuple

from ..core.gates import Gate
from .base import EmitterError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit

_EXPORT_NAMES = {
    "id": "id",
    "h": "h",
    "x": "x",
    "y": "y",
    "z": "z",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "sx": "sx",
    "sxdg": "sxdg",
    "rx": "rx",
    "ry": "ry",
    "rz": "rz",
    "p": "u1",
    "cx": "cx",
    "cy": "cy",
    "cz": "cz",
    "ch": "ch",
    "crz": "crz",
    "cp": "cu1",
    "swap": "swap",
    "ccx": "ccx",
    "ccz": "ccz",
    "cswap": "cswap",
}

_IMPORT_NAMES = {v: k for k, v in _EXPORT_NAMES.items()}
_IMPORT_NAMES["u1"] = "p"
_IMPORT_NAMES["cu1"] = "cp"

#: number of control qubits per exported name
_NUM_CONTROLS = {
    "cx": 1,
    "cy": 1,
    "cz": 1,
    "ch": 1,
    "crz": 1,
    "cp": 1,
    "ccx": 2,
    "ccz": 2,
    "cswap": 1,
}


class QasmError(EmitterError):
    """Raised on malformed OpenQASM input or unexportable gates."""


def to_qasm(circuit: "QuantumCircuit") -> str:
    """Serialize a circuit as OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{max(circuit.num_qubits, 1)}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    """Render one core gate as an OpenQASM 2.0 statement."""
    if gate.name == "measure":
        return f"measure q[{gate.targets[0]}] -> c[{gate.cbits[0]}];"
    if gate.name == "reset":
        return f"reset q[{gate.targets[0]}];"
    if gate.name == "barrier":
        wires = ", ".join(f"q[{q}]" for q in gate.targets)
        return f"barrier {wires};"
    if gate.name == "ccz":
        # qelib1 has no ccz; emit h-ccx-h equivalent inline as three ops
        c1, c2 = gate.controls
        tgt = gate.targets[0]
        return (
            f"h q[{tgt}];\nccx q[{c1}], q[{c2}], q[{tgt}];\nh q[{tgt}];"
        )
    name = _EXPORT_NAMES.get(gate.name)
    if name is None:
        raise QasmError(
            f"gate {gate.name!r} has no OpenQASM 2.0 form; map it first"
        )
    params = ""
    if gate.params:
        params = "(" + ", ".join(_format_angle(p) for p in gate.params) + ")"
    wires = ", ".join(f"q[{q}]" for q in gate.qubits)
    return f"{name}{params} {wires};"


def _format_angle(value: float) -> str:
    """Render an angle, using pi fractions when exact."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                sign = "-" if num < 0 else ""
                num = abs(num)
                if num == denom:
                    return f"{sign}pi"
                if denom == 1:
                    return f"{sign}{num}*pi"
                if num == 1:
                    return f"{sign}pi/{denom}"
                return f"{sign}{num}*pi/{denom}"
    if abs(value) < 1e-12:
        return "0"
    return repr(value)


_GATE_RE = re.compile(
    r"^(?P<name>[a-z][a-z0-9]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<args>.*);$"
)
_MEASURE_RE = re.compile(
    r"^measure\s+(\w+)\[(\d+)\]\s*->\s*(\w+)\[(\d+)\];$"
)
_OPERAND_RE = re.compile(r"(\w+)\[(\d+)\]")


def _parse_angle(text: str) -> float:
    """Evaluate a restricted ``pi``-fraction angle expression."""
    text = text.strip().replace("pi", repr(math.pi))
    # restrict eval to arithmetic characters
    if not re.fullmatch(r"[0-9eE+\-*/. ()]*", text):
        raise QasmError(f"bad angle expression {text!r}")
    return float(eval(text, {"__builtins__": {}}))  # noqa: S307


def _wire_lookup(registers, kind):
    """Build a ``(name, index) -> flat wire`` resolver for one kind.

    Registers declared in order are flattened with running offsets, so
    external files with named (or multiple) ``qreg``/``creg``
    declarations import onto the single flat register this package
    uses.  Unknown register names raise instead of silently dropping
    operands.
    """

    def resolve(name, index):
        if name not in registers:
            declared = ", ".join(registers) or "(none)"
            raise QasmError(
                f"unknown {kind} register {name!r}; declared: {declared}"
            )
        offset, size = registers[name]
        if index >= size:
            raise QasmError(
                f"{kind} index {name}[{index}] outside the register's "
                f"size {size}"
            )
        return offset + index

    return resolve


def from_qasm(text: str) -> "QuantumCircuit":
    """Parse OpenQASM 2.0 text (the subset emitted by :func:`to_qasm`).

    Externally produced files are welcome too: named and multiple
    ``qreg``/``creg`` declarations flatten onto one register in
    declaration order, and operands referencing undeclared registers
    raise :class:`QasmError` instead of being dropped.
    """
    from ..core.circuit import QuantumCircuit

    qregs = {}
    cregs = {}
    num_qubits = 0
    num_clbits = 0
    body: List[str] = []
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM"):
            if not re.match(r"^OPENQASM\s+2(\.\d+)?\s*;", line):
                raise QasmError(
                    f"{line.rstrip(';')}: OpenQASM 3 import is not "
                    "supported; only the OpenQASM 2.0 subset parses"
                )
            continue
        if line.startswith("include"):
            continue
        match = re.match(r"^qreg\s+(\w+)\[(\d+)\];$", line)
        if match:
            qregs[match.group(1)] = (num_qubits, int(match.group(2)))
            num_qubits += int(match.group(2))
            continue
        match = re.match(r"^creg\s+(\w+)\[(\d+)\];$", line)
        if match:
            cregs[match.group(1)] = (num_clbits, int(match.group(2)))
            num_clbits += int(match.group(2))
            continue
        body.append(line)

    qubit_of = _wire_lookup(qregs, "quantum")
    clbit_of = _wire_lookup(cregs, "classical")
    circuit = QuantumCircuit(num_qubits, num_clbits)
    for line in body:
        match = _MEASURE_RE.match(line)
        if match:
            circuit.measure(
                qubit_of(match.group(1), int(match.group(2))),
                clbit_of(match.group(3), int(match.group(4))),
            )
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise QasmError(f"cannot parse line {line!r}")
        qasm_name = match.group("name")
        qubits = [
            qubit_of(reg, int(idx))
            for reg, idx in _OPERAND_RE.findall(match.group("args"))
        ]
        if qasm_name == "barrier":
            circuit.barrier(*qubits)
            continue
        if qasm_name == "reset":
            circuit.reset(qubits[0])
            continue
        name = _IMPORT_NAMES.get(qasm_name)
        if name is None:
            raise QasmError(f"unsupported gate {qasm_name!r}")
        params = ()
        if match.group("params"):
            params = tuple(
                _parse_angle(p) for p in match.group("params").split(",")
            )
        n_ctl = _NUM_CONTROLS.get(name, 0)
        controls = tuple(qubits[:n_ctl])
        targets = tuple(qubits[n_ctl:])
        circuit.append(Gate(name, targets, controls, params))
    return circuit


class Qasm2Emitter:
    """The ``qasm2`` registry backend (OpenQASM 2.0, round-trip)."""

    name = "qasm2"
    description = "OpenQASM 2.0 (qelib1.inc vocabulary, round-trip import)"
    file_extension = ".qasm"
    aliases: Tuple[str, ...] = ("qasm", "openqasm2")

    def emit(self, circuit: "QuantumCircuit", **opts) -> str:
        """Serialize ``circuit`` as OpenQASM 2.0 text."""
        if opts:
            raise QasmError(
                f"qasm2 emitter takes no options, got {sorted(opts)}"
            )
        return to_qasm(circuit)

    def parse(self, text: str) -> "QuantumCircuit":
        """Import OpenQASM 2.0 text back into a circuit."""
        return from_qasm(text)


#: The registry instance (loaded by :mod:`repro.emit.registry`).
EMITTER = Qasm2Emitter()

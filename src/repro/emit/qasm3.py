"""OpenQASM 3.0 backend.

Emits the ``stdgates.inc`` vocabulary with OpenQASM 3 declarations
(``qubit[n] q;`` / ``bit[n] c;``) and measurement assignment syntax
(``c[0] = measure q[0];``).  Unlike the 2.0 exporter, gates outside
the include vocabulary do not require pre-mapping: multiple-controlled
X/Z/phase gates and adjoints are expressed with the language's
``ctrl(k) @`` / ``inv @`` gate modifiers, so reversible-level MCT
cascades emit directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..core.gates import Gate
from .base import EmitterError
from .qasm2 import _format_angle

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit

#: Gates present verbatim in stdgates.inc: canonical name →
#: (qasm3 name, expected control count).
_STD_NAMES = {
    "id": ("id", 0),
    "h": ("h", 0),
    "x": ("x", 0),
    "y": ("y", 0),
    "z": ("z", 0),
    "s": ("s", 0),
    "sdg": ("sdg", 0),
    "t": ("t", 0),
    "tdg": ("tdg", 0),
    "sx": ("sx", 0),
    "rx": ("rx", 0),
    "ry": ("ry", 0),
    "rz": ("rz", 0),
    "p": ("p", 0),
    "cx": ("cx", 1),
    "cy": ("cy", 1),
    "cz": ("cz", 1),
    "ch": ("ch", 1),
    "crz": ("crz", 1),
    "cp": ("cp", 1),
    "swap": ("swap", 0),
    "ccx": ("ccx", 2),
    "cswap": ("cswap", 1),
}

#: Gates expressed through modifiers: name →
#: (modifier, base gate, expected control count).
_MODIFIER_FORMS = {
    "sxdg": ("inv @", "sx", 0),
    "ccz": ("ctrl(2) @", "z", 2),
}


def _gate_to_qasm3(gate: Gate) -> str:
    """Render one core gate as an OpenQASM 3 statement."""
    if gate.name == "measure":
        return f"c[{gate.cbits[0]}] = measure q[{gate.targets[0]}];"
    if gate.name == "reset":
        return f"reset q[{gate.targets[0]}];"
    if gate.name == "barrier":
        wires = ", ".join(f"q[{q}]" for q in gate.targets)
        return f"barrier {wires};"
    wires = ", ".join(f"q[{q}]" for q in gate.qubits)
    params = ""
    if gate.params:
        params = "(" + ", ".join(
            _format_angle(p) for p in gate.params
        ) + ")"
    # every vocabulary entry fixes its control count; unexpected
    # controls must raise, never be dropped into the operand list
    if gate.name in _MODIFIER_FORMS:
        modifier, base, n_controls = _MODIFIER_FORMS[gate.name]
        if len(gate.controls) == n_controls:
            return f"{modifier} {base}{params} {wires};"
    elif gate.name in ("mcx", "mcz", "mcp"):
        base = gate.name[2:]
        return f"ctrl({len(gate.controls)}) @ {base}{params} {wires};"
    elif gate.name in _STD_NAMES:
        name, n_controls = _STD_NAMES[gate.name]
        if len(gate.controls) == n_controls:
            return f"{name}{params} {wires};"
    raise EmitterError(
        f"gate {gate.name!r} (controls={gate.controls}) has no "
        "OpenQASM 3.0 form"
    )


def to_qasm3(circuit: "QuantumCircuit") -> str:
    """Serialize a circuit as OpenQASM 3.0 text."""
    lines = [
        "OPENQASM 3.0;",
        'include "stdgates.inc";',
        f"qubit[{max(circuit.num_qubits, 1)}] q;",
    ]
    if circuit.num_clbits:
        lines.append(f"bit[{circuit.num_clbits}] c;")
    for gate in circuit.gates:
        lines.append(_gate_to_qasm3(gate))
    return "\n".join(lines) + "\n"


class Qasm3Emitter:
    """The ``qasm3`` registry backend (OpenQASM 3.0, stdgates.inc)."""

    name = "qasm3"
    description = "OpenQASM 3.0 (stdgates.inc + ctrl/inv gate modifiers)"
    file_extension = ".qasm3"
    aliases: Tuple[str, ...] = ("openqasm3",)

    def emit(self, circuit: "QuantumCircuit", **opts) -> str:
        """Serialize ``circuit`` as OpenQASM 3.0 text."""
        if opts:
            raise EmitterError(
                f"qasm3 emitter takes no options, got {sorted(opts)}"
            )
        return to_qasm3(circuit)


#: The registry instance (loaded by :mod:`repro.emit.registry`).
EMITTER = Qasm3Emitter()

"""The :class:`Emitter` protocol — what an emission backend provides.

An emitter renders a compiled :class:`~repro.core.circuit.QuantumCircuit`
as source text for one quantum programming framework (the paper's
Sec. II "assembly languages": OpenQASM, Q#, ProjectQ, ...).  Backends
are plain objects satisfying the protocol; the registry in
:mod:`repro.emit.registry` makes them addressable by name everywhere a
format is accepted (``Target.emitter``, ``CompilationResult.emit``,
``python -m repro compile --emit``, the RevKit shell's ``write_*``
commands).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit


class EmitterError(ValueError):
    """Raised for unknown formats or backends that cannot comply."""


@runtime_checkable
class Emitter(Protocol):
    """What an emission backend must provide.

    Attributes:
        name: canonical registry name (lowercase, e.g. ``"qasm2"``).
        description: one-line summary shown by format listings.
        file_extension: preferred output suffix (e.g. ``".qasm"``),
            used by the shell's ``write_*`` commands and path-based
            workload detection.
        aliases: alternative names resolving to this backend (e.g.
            ``"qasm"`` for ``qasm2``).
    """

    name: str
    description: str
    file_extension: str
    aliases: Tuple[str, ...]

    def emit(self, circuit: "QuantumCircuit", **opts) -> str:
        """Render ``circuit`` as source text in this backend's format.

        Args:
            circuit: the compiled circuit to render.
            **opts: backend-specific options (e.g. the Q# backend's
                ``name=`` operation name).

        Returns:
            The emitted source text.
        """
        ...  # pragma: no cover


def can_parse(emitter: Emitter) -> bool:
    """Return whether a backend implements the optional ``parse`` hook.

    Args:
        emitter: the backend to probe.

    Returns:
        True when ``emitter.parse(text)`` is available.
    """
    return callable(getattr(emitter, "parse", None))

"""Q# backend — the Fig. 10 oracle operation as a registry emitter.

The emitted text is exactly what
``repro.frameworks.qsharp.operation_from_circuit`` historically
produced (a self-adjointable operation over a ``Qubit[]`` register);
that entry point now forwards here through the registry.  The gate
vocabulary and the statement parser stay in
:mod:`repro.frameworks.qsharp`, the source of truth for the Q#
dialect.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Tuple

from .base import EmitterError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit

_INDEX_RE = re.compile(r"qubits\[(\d+)\]")


def operation_code(
    circuit: "QuantumCircuit",
    name: str = "CompiledOperation",
    namespace: str = "Repro.Quantum.PermOracle",
) -> str:
    """Render a circuit as a self-adjointable Q# operation (Fig. 10).

    Args:
        circuit: the compiled circuit to render.
        name: the Q# operation name.
        namespace: the Q# namespace wrapping the operation.

    Returns:
        The Q# source text.
    """
    from ..frameworks.qsharp import gate_to_qsharp

    body_lines = [f"            {gate_to_qsharp(g)}" for g in circuit.gates]
    body = "\n".join(body_lines)
    return f"""namespace {namespace} {{
    open Microsoft.Quantum.Primitive;

    operation {name}
        (qubits : Qubit[]) :
        () {{
        body {{
{body}
        }}
        adjoint auto
        controlled auto
        controlled adjoint auto
    }}
}}"""


class QSharpEmitter:
    """The ``qsharp`` registry backend (Fig. 10 operation source)."""

    name = "qsharp"
    description = "Q# operation source (Fig. 10 shape, adjoint auto)"
    file_extension = ".qs"
    aliases: Tuple[str, ...] = ("qs", "q#")

    def emit(self, circuit: "QuantumCircuit", **opts) -> str:
        """Render ``circuit`` as a Q# operation.

        Options: ``name`` (operation name, default
        ``CompiledOperation``) and ``namespace``.
        """
        name = opts.pop("name", "CompiledOperation")
        namespace = opts.pop("namespace", "Repro.Quantum.PermOracle")
        if opts:
            raise EmitterError(
                "qsharp emitter takes only name=/namespace= options, "
                f"got {sorted(opts)}"
            )
        return operation_code(circuit, name=name, namespace=namespace)

    def parse(self, text: str, num_qubits: "int | None" = None) -> "QuantumCircuit":
        """Import a generated operation's gate statements.

        The Q# operation signature carries no register width, so by
        default it is *inferred* as the highest ``qubits[i]`` index
        plus one — exact for synthesized permutation oracles (which
        touch every wire), but an undercount for circuits whose top
        wires are idle.  Pass ``num_qubits=`` when the true width is
        known (``repro.emit.parse(text, "qsharp", num_qubits=5)``).
        """
        from ..frameworks.qsharp import parse_operation_body

        if num_qubits is None:
            indices = [int(i) for i in _INDEX_RE.findall(text)]
            num_qubits = max(indices) + 1 if indices else 0
        return parse_operation_body(text, num_qubits)


#: The registry instance (loaded by :mod:`repro.emit.registry`).
EMITTER = QSharpEmitter()

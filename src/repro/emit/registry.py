"""The emitter registry: name → backend resolution for every format.

Built-in backends load lazily on first registry use — importing
:mod:`repro.emit` alone pays for none of them (in a full ``import
repro`` the compiler's target presets resolve their ``emitter``
fields, which does load the builtins; each backend module is kept
import-light for exactly that reason).  User backends join via
:func:`register`; from then on both kinds are indistinguishable.
Resolution is case-insensitive and alias-aware (``"qasm"`` is the
historical alias of ``"qasm2"``).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from .base import Emitter, EmitterError, can_parse

if TYPE_CHECKING:  # pragma: no cover
    from ..core.circuit import QuantumCircuit

#: Built-in backend modules, in canonical listing order; each module
#: exposes its backend instance as ``EMITTER``.
_BUILTIN_MODULES = ("qasm2", "qasm3", "qsharp", "projectq", "cirq", "qir")

_REGISTRY: Dict[str, Emitter] = {}
_ALIASES: Dict[str, str] = {}
_ORDER: List[str] = []
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load and register the built-in backends exactly once."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for module_name in _BUILTIN_MODULES:
        module = importlib.import_module(f".{module_name}", __package__)
        register(module.EMITTER)


def register(emitter: Emitter, overwrite: bool = False) -> Emitter:
    """Register a backend under its canonical name and aliases.

    Args:
        emitter: the backend to register (anything satisfying the
            :class:`~.base.Emitter` protocol).
        overwrite: replace an existing registration of the same name
            or alias instead of raising.

    Returns:
        The registered backend (for chaining).

    Raises:
        EmitterError: when the backend is missing protocol fields, or
            its name/alias collides with an existing registration and
            ``overwrite`` is false.
    """
    for attr in ("name", "description", "file_extension", "emit"):
        if not hasattr(emitter, attr):
            raise EmitterError(
                f"emitter {emitter!r} does not satisfy the Emitter "
                f"protocol: missing {attr!r}"
            )
    _ensure_builtins()
    name = emitter.name.lower()
    aliases = tuple(a.lower() for a in getattr(emitter, "aliases", ()))
    taken = [
        key
        for key in (name, *aliases)
        if key in _REGISTRY or key in _ALIASES
    ]
    if taken and not overwrite:
        raise EmitterError(
            f"emission format {taken[0]!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    # evict everything the new registration shadows: backends whose
    # canonical name collides with one of our keys, aliases colliding
    # with our keys, and the replaced backend's own old aliases
    predecessors = (
        set(_ORDER[: _ORDER.index(name)]) if name in _REGISTRY else None
    )
    for key in (name, *aliases):
        if key in _REGISTRY:
            unregister(key)
        _ALIASES.pop(key, None)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == name:
            del _ALIASES[alias]
    _REGISTRY[name] = emitter
    if predecessors is not None:
        # keep the replaced backend's listing position relative to the
        # entries that survived the evictions (order is also
        # emitter_for_path's first-match priority)
        index = sum(1 for key in _ORDER if key in predecessors)
        _ORDER.insert(index, name)
    elif name not in _ORDER:
        _ORDER.append(name)
    for alias in aliases:
        _ALIASES[alias] = name
    return emitter


def unregister(name: str) -> Emitter:
    """Remove a backend registration (built-ins included).

    Args:
        name: the canonical format name to remove (not an alias).

    Returns:
        The removed backend.

    Raises:
        EmitterError: when no backend of that name is registered.
    """
    _ensure_builtins()
    key = name.lower()
    emitter = _REGISTRY.get(key)
    if emitter is None:
        raise EmitterError(
            f"unknown emission format {name!r}; registered formats: "
            f"{describe_formats()}"
        )
    del _REGISTRY[key]
    _ORDER.remove(key)
    for alias, canonical in list(_ALIASES.items()):
        if canonical == key:
            del _ALIASES[alias]
    return emitter


def get(spec: Union[str, Emitter]) -> Emitter:
    """Resolve a format name (or alias, or backend) to its backend.

    Args:
        spec: a registered format name or alias (case-insensitive),
            or an :class:`~.base.Emitter` instance (returned as-is).

    Returns:
        The resolved backend.

    Raises:
        EmitterError: for unknown names; the message lists the
            registered formats (with their aliases).
    """
    if not isinstance(spec, str):
        # duck-typed like register(): 'aliases' stays optional
        if hasattr(spec, "emit") and hasattr(spec, "name"):
            return spec
        raise EmitterError(
            f"expected a format name or Emitter, got {type(spec).__name__}"
        )
    _ensure_builtins()
    key = spec.lower()
    key = _ALIASES.get(key, key)
    emitter = _REGISTRY.get(key)
    if emitter is None:
        raise EmitterError(
            f"unknown emission format {spec!r}; registered formats: "
            f"{describe_formats()}"
        )
    return emitter


def formats() -> Tuple[str, ...]:
    """Return the canonical registered format names, in listing order."""
    _ensure_builtins()
    return tuple(_ORDER)


def describe_formats() -> str:
    """Return ``"qasm2 (aka qasm), qasm3, ..."`` for error messages."""
    parts = []
    for name in formats():
        # the live alias map, not the backends' static declarations:
        # overwrite registrations may have reassigned an alias
        aliases = tuple(
            alias
            for alias, canonical in _ALIASES.items()
            if canonical == name
        )
        if aliases:
            parts.append(f"{name} (aka {', '.join(aliases)})")
        else:
            parts.append(name)
    return ", ".join(parts)


def parseable_formats() -> Tuple[str, ...]:
    """Return the registered formats whose backend can ``parse``."""
    return tuple(
        name for name in formats() if can_parse(_REGISTRY[name])
    )


def emit(circuit: "QuantumCircuit", format: str, **opts) -> str:
    """Render a circuit in the named format (registry dispatch).

    Args:
        circuit: the circuit to render.
        format: registered format name or alias.
        **opts: backend-specific options.

    Returns:
        The emitted source text.

    Raises:
        EmitterError: for unknown format names.
    """
    return get(format).emit(circuit, **opts)


def parse(text: str, format: str = "qasm2", **opts) -> "QuantumCircuit":
    """Parse source text back into a circuit (registry dispatch).

    Args:
        text: the source text to import.
        format: registered format name or alias; the backend must
            implement the optional ``parse`` hook.
        **opts: backend-specific import options (e.g. the Q#
            backend's ``num_qubits=`` register-width override).

    Returns:
        The imported :class:`~repro.core.circuit.QuantumCircuit`.

    Raises:
        EmitterError: for unknown formats, or formats whose backend
            cannot parse (the message lists the ones that can).
    """
    emitter = get(format)
    if not can_parse(emitter):
        raise EmitterError(
            f"format {emitter.name!r} has no importer; formats with "
            f"round-trip parse support: "
            f"{', '.join(parseable_formats())}"
        )
    return emitter.parse(text, **opts)


def emitter_for_path(path: str) -> Emitter:
    """Resolve a file path to a backend by its extension.

    Args:
        path: a file name whose suffix selects the format (e.g.
            ``oracle.qasm`` → ``qasm2``).

    Returns:
        The first registered backend (in listing order) claiming the
        suffix.

    Raises:
        EmitterError: when no backend claims the suffix; the message
            lists the known extensions.
    """
    lowered = str(path).lower()
    for name in formats():
        if lowered.endswith(_REGISTRY[name].file_extension):
            return _REGISTRY[name]
    known = ", ".join(
        f"{_REGISTRY[name].file_extension} ({name})" for name in formats()
    )
    raise EmitterError(
        f"no emission format claims the extension of {path!r}; known "
        f"extensions: {known}"
    )

"""Dense unitary construction and equivalence checks.

Used by the test-suite and the verification step of the compilation
flow (Sec. IX of the paper discusses verification of synthesized
circuits).  Only practical for small qubit counts; the simulator
package handles larger widths without materializing matrices.

Gate application is delegated to the batched in-place kernels of
:mod:`repro.simulator.kernels`: the ``2^n x 2^n`` unitary is treated
as a batch of ``2^n`` column states indexed by the row (state) axis,
so the same bit-sliced code drives both the simulator and the dense
verifier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import QuantumCircuit


def _apply_gate_inplace(
    unitary: np.ndarray, gate, num_qubits: int, backend=None
) -> None:
    """Left-multiply ``unitary`` by ``gate`` in place via the kernels."""
    from ..simulator import kernels

    if not kernels.apply_gate(unitary, gate, num_qubits, backend=backend):
        kernels.apply_matrix(
            unitary, gate.matrix(), gate.qubits, num_qubits, backend=backend
        )


def apply_gate_to_unitary(
    unitary: np.ndarray, gate, num_qubits: int, backend=None
) -> np.ndarray:
    """Left-multiply ``unitary`` by ``gate`` lifted to ``num_qubits``.

    Qubit 0 is the least-significant bit of row/column indices.  The
    input is not modified; a new array is returned.  ``backend``
    optionally names the array backend executing the kernels.
    """
    out = np.array(unitary, dtype=complex)
    _apply_gate_inplace(out, gate, num_qubits, backend)
    return out


def circuit_unitary(circuit: "QuantumCircuit", backend=None) -> np.ndarray:
    """Dense unitary of a measurement-free circuit.

    The unitary is evolved as a ``2**n``-column batch through the
    array backend's batch axis; ``backend`` optionally names the
    backend (``None`` uses the process default).
    """
    if circuit.num_qubits > 12:
        raise ValueError(
            f"refusing to build a dense unitary on {circuit.num_qubits} qubits"
        )
    dim = 1 << circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit.gates:
        if gate.name == "barrier":
            continue
        if not gate.is_unitary:
            raise ValueError(f"circuit contains non-unitary gate {gate.name!r}")
        _apply_gate_inplace(unitary, gate, circuit.num_qubits, backend)
    return unitary


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-9
) -> bool:
    """True if ``a == e^{i phi} b`` for some real phi."""
    if a.shape != b.shape:
        return False
    # find the first non-negligible entry of b to fix the phase
    flat_b = b.ravel()
    flat_a = a.ravel()
    idx = np.argmax(np.abs(flat_b))
    if abs(flat_b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = flat_a[idx] / flat_b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def circuits_equivalent(
    circ_a: "QuantumCircuit", circ_b: "QuantumCircuit", up_to_phase: bool = True
) -> bool:
    """Check unitary equivalence of two small circuits."""
    if circ_a.num_qubits != circ_b.num_qubits:
        return False
    ua = circuit_unitary(circ_a)
    ub = circuit_unitary(circ_b)
    if up_to_phase:
        return allclose_up_to_global_phase(ua, ub)
    return bool(np.allclose(ua, ub, atol=1e-9))


def unitary_as_permutation(unitary: np.ndarray, atol: float = 1e-9):
    """If ``unitary`` is a permutation matrix (up to global phase),
    return the permutation as a list where ``perm[x] = y`` means basis
    state ``|x>`` maps to ``|y>``; otherwise return ``None``."""
    dim = unitary.shape[0]
    perm = [0] * dim
    seen = set()
    for col in range(dim):
        column = unitary[:, col]
        idx = int(np.argmax(np.abs(column)))
        val = column[idx]
        if abs(abs(val) - 1.0) > 1e-6:
            return None
        residual = np.abs(column).sum() - abs(val)
        if residual > atol * dim:
            return None
        if idx in seen:
            return None
        seen.add(idx)
        perm[col] = idx
    return perm

"""Gate dependency DAG.

Builds a directed acyclic graph over the gates of a circuit where an
edge ``i -> j`` means gate ``j`` must execute after gate ``i`` because
they share a qubit (or classical bit).  Used by the optimization passes
for commutation-aware cancellation and by T-depth scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import QuantumCircuit


@dataclass
class DagNode:
    """One gate plus its dependency links."""

    index: int
    gate: object
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)


class CircuitDag:
    """Dependency DAG of a circuit's gates."""

    def __init__(self, circuit: "QuantumCircuit"):
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_wire: Dict[str, int] = {}
        for index, gate in enumerate(circuit.gates):
            node = DagNode(index, gate)
            wires = [f"q{q}" for q in gate.qubits]
            wires += [f"c{c}" for c in gate.cbits]
            for wire in wires:
                if wire in last_on_wire:
                    prev = last_on_wire[wire]
                    node.predecessors.add(prev)
                    self.nodes[prev].successors.add(index)
                last_on_wire[wire] = index
            self.nodes.append(node)

    def front_layer(self) -> List[int]:
        """Indices of gates with no predecessors."""
        return [n.index for n in self.nodes if not n.predecessors]

    def topological_layers(self) -> List[List[int]]:
        """Partition gate indices into ASAP layers."""
        in_degree = {n.index: len(n.predecessors) for n in self.nodes}
        layer = [i for i, d in in_degree.items() if d == 0]
        layers: List[List[int]] = []
        while layer:
            layers.append(sorted(layer))
            next_layer: List[int] = []
            for i in layer:
                for succ in self.nodes[i].successors:
                    in_degree[succ] -= 1
                    if in_degree[succ] == 0:
                        next_layer.append(succ)
            layer = next_layer
        return layers

    def longest_path_length(self) -> int:
        """Length (in gates) of the critical path."""
        return len(self.topological_layers())

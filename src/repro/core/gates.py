"""Quantum gate definitions.

A :class:`Gate` is an immutable description of a quantum operation: a
name, the qubits it acts on (split into *controls* and *targets*), and
optional real parameters (rotation angles).  The unitary matrix of each
gate kind is provided by :func:`gate_matrix`, which returns the matrix
acting on the gate's own qubits only (controls included).

The gate vocabulary covers the Clifford+T set used throughout the paper
(H, X, Y, Z, S, S', T, T', CNOT, CZ, SWAP), arbitrary-angle rotations
(RX, RY, RZ, PHASE, U1/U2/U3 aliases used by early IBM QE), and
multiple-controlled X / Z gates which appear before Clifford+T mapping.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

#: Gates with no parameters, keyed by canonical name.
FIXED_GATES = (
    "id",
    "h",
    "x",
    "y",
    "z",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "sxdg",
    "cx",
    "cy",
    "cz",
    "ch",
    "swap",
    "ccx",
    "ccz",
    "cswap",
    "mcx",
    "mcz",
)

#: Gates carrying one angle parameter.
ROTATION_GATES = ("rx", "ry", "rz", "p", "crz", "cp", "mcp")

#: Non-unitary circuit elements.
NON_UNITARY = ("measure", "reset", "barrier")

#: Names whose adjoint is themselves.
SELF_INVERSE = frozenset(
    {
        "id",
        "h",
        "x",
        "y",
        "z",
        "cx",
        "cy",
        "cz",
        "ch",
        "swap",
        "ccx",
        "ccz",
        "cswap",
        "mcx",
        "mcz",
        "barrier",
    }
)

#: name -> adjoint name for the non-self-inverse fixed gates.
ADJOINT_NAME = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
}

_SQ2 = 1.0 / math.sqrt(2.0)

_FIXED_MATRICES: Dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sxdg": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
}

#: single-qubit base of each controlled gate.
CONTROLLED_BASE = {
    "cx": "x",
    "cy": "y",
    "cz": "z",
    "ch": "h",
    "ccx": "x",
    "ccz": "z",
    "mcx": "x",
    "mcz": "z",
    "crz": "rz",
    "cp": "p",
    "mcp": "p",
    "cswap": "swap",
}


def rotation_matrix(name: str, angle: float) -> np.ndarray:
    """Return the 2x2 (or 4x4 for swap) matrix of a parametric base gate."""
    half = angle / 2.0
    if name == "rx":
        return np.array(
            [
                [math.cos(half), -1j * math.sin(half)],
                [-1j * math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "ry":
        return np.array(
            [
                [math.cos(half), -math.sin(half)],
                [math.sin(half), math.cos(half)],
            ],
            dtype=complex,
        )
    if name == "rz":
        return np.array(
            [[cmath.exp(-1j * half), 0], [0, cmath.exp(1j * half)]],
            dtype=complex,
        )
    if name == "p":
        return np.array([[1, 0], [0, cmath.exp(1j * angle)]], dtype=complex)
    raise ValueError(f"unknown rotation gate {name!r}")


def _controlled(matrix: np.ndarray, num_controls: int) -> np.ndarray:
    """Embed ``matrix`` as the bottom-right block of a controlled gate.

    Convention: control qubits are the *most significant* bits of the
    gate's local index space, so the base matrix applies only when all
    controls are 1.
    """
    base_dim = matrix.shape[0]
    dim = base_dim * (2 ** num_controls)
    out = np.eye(dim, dtype=complex)
    out[dim - base_dim:, dim - base_dim:] = matrix
    return out


_SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


@dataclass(frozen=True)
class Gate:
    """One operation in a quantum circuit.

    Attributes:
        name: canonical lowercase gate name (see module constants).
        targets: qubit indices the base operation acts on.
        controls: qubit indices conditioning the operation (all must
            be |1> for the base operation to apply).
        params: real parameters, e.g. a rotation angle.
        cbits: classical bit indices (measurement results).
    """

    name: str
    targets: Tuple[int, ...]
    controls: Tuple[int, ...] = ()
    params: Tuple[float, ...] = ()
    cbits: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        qubits = self.targets + self.controls
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit in gate {self.name}: {qubits}")

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubits touched by the gate: controls first, then targets."""
        return self.controls + self.targets

    @property
    def num_qubits(self) -> int:
        return len(self.targets) + len(self.controls)

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY

    @property
    def base_name(self) -> str:
        """Name of the underlying uncontrolled operation."""
        return CONTROLLED_BASE.get(self.name, self.name)

    def dagger(self) -> "Gate":
        """Return the adjoint gate."""
        if self.name in NON_UNITARY:
            raise ValueError(f"cannot invert non-unitary gate {self.name!r}")
        if self.name in SELF_INVERSE:
            return self
        if self.name in ADJOINT_NAME:
            return Gate(
                ADJOINT_NAME[self.name],
                self.targets,
                self.controls,
                self.params,
            )
        if self.base_name in ("rx", "ry", "rz", "p"):
            return Gate(
                self.name,
                self.targets,
                self.controls,
                tuple(-p for p in self.params),
            )
        raise ValueError(f"do not know how to invert gate {self.name!r}")

    def remap(self, mapping: Dict[int, int]) -> "Gate":
        """Return the same gate acting on relabelled qubits."""
        return Gate(
            self.name,
            tuple(mapping[q] for q in self.targets),
            tuple(mapping[q] for q in self.controls),
            self.params,
            tuple(self.cbits),
        )

    def matrix(self) -> np.ndarray:
        """Unitary matrix over this gate's own qubits.

        Qubit ordering within the matrix: ``self.qubits`` from most
        significant to least significant bit (controls are the most
        significant bits).
        """
        return gate_matrix(self)

    def __str__(self) -> str:
        parts = [self.name]
        if self.params:
            parts.append("(" + ", ".join(f"{p:.6g}" for p in self.params) + ")")
        if self.controls:
            parts.append(" c" + str(list(self.controls)))
        parts.append(" t" + str(list(self.targets)))
        return "".join(parts)


@lru_cache(maxsize=4096)
def _cached_base_matrix(base: str, params: Tuple[float, ...]) -> np.ndarray:
    if base == "swap":
        matrix = _SWAP_MATRIX.copy()
    elif base in _FIXED_MATRICES:
        matrix = _FIXED_MATRICES[base].copy()
    elif base in ("rx", "ry", "rz", "p"):
        matrix = rotation_matrix(base, params[0])
    else:
        raise ValueError(f"unknown gate {base!r}")
    matrix.flags.writeable = False  # shared across callers
    return matrix


@lru_cache(maxsize=4096)
def _cached_gate_matrix(
    base: str, params: Tuple[float, ...], num_controls: int
) -> np.ndarray:
    matrix = _cached_base_matrix(base, params)
    if num_controls:
        matrix = _controlled(matrix, num_controls)
        matrix.flags.writeable = False
    return matrix


def base_matrix(base: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Cached (read-only) matrix of an uncontrolled base gate."""
    return _cached_base_matrix(base, tuple(params))


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of ``gate`` on its local qubit space.

    Matrices of fixed and controlled gates are built once and cached
    (keyed by base name, parameters, and control count); the returned
    arrays are read-only — copy before mutating.
    """
    if not gate.is_unitary:
        raise ValueError(f"gate {gate.name!r} has no unitary matrix")
    try:
        return _cached_gate_matrix(gate.base_name, gate.params, len(gate.controls))
    except ValueError:
        raise ValueError(f"unknown gate {gate.name!r}") from None


def is_clifford_t_name(name: str) -> bool:
    """True if the gate name belongs to the Clifford+T basis used after
    mapping (single-qubit Clifford+T plus CNOT/CZ/SWAP)."""
    return name in {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "cx",
        "cz",
        "swap",
    }


def is_clifford_name(name: str, params: Tuple[float, ...] = ()) -> bool:
    """True if the gate is a Clifford operation (stabilizer-simulable)."""
    if name in {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "sx",
        "sxdg",
        "cx",
        "cy",
        "cz",
        "swap",
    }:
        return True
    if name in ("rz", "p") and params:
        # multiples of pi/2 are Clifford
        frac = params[0] / (math.pi / 2)
        return abs(frac - round(frac)) < 1e-12
    return False

"""Core quantum circuit IR: gates, circuits, statistics, QASM, DAG."""

from .circuit import QuantumCircuit
from .dag import CircuitDag
from .drawing import draw_circuit, draw_reversible
from .gates import Gate, gate_matrix, is_clifford_name, is_clifford_t_name
from ..emit.qasm2 import QasmError, from_qasm, to_qasm
from .statistics import CircuitStatistics, circuit_statistics
from .unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    circuits_equivalent,
    unitary_as_permutation,
)

__all__ = [
    "QuantumCircuit",
    "CircuitDag",
    "draw_circuit",
    "draw_reversible",
    "Gate",
    "gate_matrix",
    "is_clifford_name",
    "is_clifford_t_name",
    "QasmError",
    "from_qasm",
    "to_qasm",
    "CircuitStatistics",
    "circuit_statistics",
    "allclose_up_to_global_phase",
    "circuit_unitary",
    "circuits_equivalent",
    "unitary_as_permutation",
]

"""Quantum circuit container.

:class:`QuantumCircuit` is the central IR of the toolflow: an ordered
list of :class:`~repro.core.gates.Gate` objects over ``num_qubits``
qubit wires and ``num_clbits`` classical wires.  It offers the gate
vocabulary as builder methods (``circ.h(0)``, ``circ.mcx([0, 1], 2)``),
structural operations (composition, inversion, power, remapping), and
conversion helpers (unitary matrix via :mod:`repro.core.unitary`,
OpenQASM and every other output format via the :mod:`repro.emit`
registry).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .gates import Gate, is_clifford_name, is_clifford_t_name


class QuantumCircuit:
    """An ordered sequence of gates over a fixed set of qubits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits < 0 or num_clbits < 0:
            raise ValueError("qubit/clbit counts must be non-negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self.gates: List[Gate] = []

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index):
        return self.gates[index]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QuantumCircuit)
            and self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self.gates == other.gates
        )

    def copy(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        out.gates = list(self.gates)
        return out

    # ------------------------------------------------------------------
    # gate appending
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating wire indices."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name} touches qubit {q} outside "
                    f"range 0..{self.num_qubits - 1}"
                )
        for c in gate.cbits:
            if not 0 <= c < self.num_clbits:
                raise ValueError(f"classical bit {c} out of range")
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def _add(self, name, targets, controls=(), params=(), cbits=()):
        self.append(
            Gate(
                name,
                tuple(targets),
                tuple(controls),
                tuple(float(p) for p in params),
                tuple(cbits),
            )
        )
        return self

    # single-qubit fixed gates ----------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self._add("id", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self._add("h", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self._add("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self._add("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self._add("z", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self._add("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self._add("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self._add("t", (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self._add("tdg", (qubit,))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self._add("sx", (qubit,))

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self._add("sxdg", (qubit,))

    # rotations ---------------------------------------------------------
    def rx(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self._add("rx", (qubit,), params=(angle,))

    def ry(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self._add("ry", (qubit,), params=(angle,))

    def rz(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self._add("rz", (qubit,), params=(angle,))

    def p(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self._add("p", (qubit,), params=(angle,))

    # controlled gates ---------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self._add("cx", (target,), (control,))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self._add("cy", (target,), (control,))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self._add("cz", (target,), (control,))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self._add("ch", (target,), (control,))

    def crz(self, angle: float, control: int, target: int) -> "QuantumCircuit":
        return self._add("crz", (target,), (control,), (angle,))

    def cp(self, angle: float, control: int, target: int) -> "QuantumCircuit":
        return self._add("cp", (target,), (control,), (angle,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self._add("swap", (a, b))

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        return self._add("cswap", (a, b), (control,))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self._add("ccx", (target,), (c1, c2))

    def ccz(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self._add("ccz", (target,), (c1, c2))

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multiple-controlled X.  Degenerates to x/cx/ccx when short."""
        controls = tuple(controls)
        if len(controls) == 0:
            return self.x(target)
        if len(controls) == 1:
            return self.cx(controls[0], target)
        if len(controls) == 2:
            return self.ccx(controls[0], controls[1], target)
        return self._add("mcx", (target,), controls)

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multiple-controlled Z."""
        controls = tuple(controls)
        if len(controls) == 0:
            return self.z(target)
        if len(controls) == 1:
            return self.cz(controls[0], target)
        if len(controls) == 2:
            return self.ccz(controls[0], controls[1], target)
        return self._add("mcz", (target,), controls)

    def mcp(self, angle: float, controls: Sequence[int], target: int) -> "QuantumCircuit":
        controls = tuple(controls)
        if len(controls) == 0:
            return self.p(angle, target)
        if len(controls) == 1:
            return self.cp(angle, controls[0], target)
        return self._add("mcp", (target,), controls, (angle,))

    # non-unitary ---------------------------------------------------------
    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self._add("measure", (qubit,), cbits=(clbit,))

    def measure_all(self) -> "QuantumCircuit":
        """Measure qubit i into classical bit i, growing clbits if needed."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self._add("reset", (qubit,))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        return self._add("barrier", tuple(qubits) or tuple(range(self.num_qubits)))

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[int]] = None,
    ) -> "QuantumCircuit":
        """Append ``other`` onto this circuit (in place).

        Args:
            other: circuit to append.
            qubits: target wires in ``self`` for each wire of ``other``;
                defaults to the identity mapping.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise ValueError("composed circuit is wider than target")
            mapping = {q: q for q in range(other.num_qubits)}
        else:
            if len(qubits) != other.num_qubits:
                raise ValueError("qubit mapping length mismatch")
            mapping = {i: q for i, q in enumerate(qubits)}
        for gate in other.gates:
            self.append(gate.remap(mapping))
        return self

    def dagger(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, inverted gates)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name + "_dg")
        for gate in reversed(self.gates):
            out.append(gate.dagger())
        return out

    inverse = dagger

    def power(self, exponent: int) -> "QuantumCircuit":
        """Return the circuit repeated ``exponent`` times (negative for
        powers of the adjoint)."""
        base = self if exponent >= 0 else self.dagger()
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        for _ in range(abs(exponent)):
            out.compose(base)
        return out

    def remap(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy acting on relabelled qubits."""
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, self.num_clbits, self.name)
        for gate in self.gates:
            out.append(gate.remap(mapping))
        return out

    def controlled(self, num_controls: int = 1) -> "QuantumCircuit":
        """Return a controlled version of the circuit.

        New control wires are prepended (indices ``0..num_controls-1``)
        and every original gate gains the new controls.  Only works for
        gates whose controlled form exists in the vocabulary.
        """
        promote = {
            "x": "cx",
            "cx": "ccx",
            "ccx": "mcx",
            "mcx": "mcx",
            "z": "cz",
            "cz": "ccz",
            "ccz": "mcz",
            "mcz": "mcz",
            "y": "cy",
            "h": "ch",
            "rz": "crz",
            "p": "cp",
            "cp": "mcp",
            "mcp": "mcp",
            "swap": "cswap",
        }
        out = QuantumCircuit(
            self.num_qubits + num_controls, self.num_clbits, self.name + "_ctl"
        )
        new_controls = tuple(range(num_controls))
        shift = {q: q + num_controls for q in range(self.num_qubits)}
        for gate in self.gates:
            shifted = gate.remap(shift)
            name = gate.name
            for _ in range(num_controls):
                if name not in promote:
                    raise ValueError(f"cannot control gate {gate.name!r}")
                name = promote[name]
            out.append(
                Gate(
                    name,
                    shifted.targets,
                    new_controls + shifted.controls,
                    shifted.params,
                )
            )
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth counting every non-barrier gate as one level."""
        level: Dict[int, int] = {}
        depth = 0
        for gate in self.gates:
            if gate.name == "barrier":
                continue
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def t_count(self) -> int:
        """Number of T/T' gates."""
        return sum(1 for g in self.gates if g.name in ("t", "tdg"))

    def t_depth(self) -> int:
        """Number of T-stages: depth counting only T/T' gates."""
        level: Dict[int, int] = {}
        depth = 0
        for gate in self.gates:
            if gate.name == "barrier":
                continue
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            inc = 1 if gate.name in ("t", "tdg") else 0
            for q in gate.qubits:
                level[q] = start + inc
            depth = max(depth, start + inc)
        return depth

    def two_qubit_count(self) -> int:
        return sum(1 for g in self.gates if g.is_unitary and g.num_qubits == 2)

    def is_clifford_t(self) -> bool:
        return all(
            is_clifford_t_name(g.name) for g in self.gates if g.is_unitary
        )

    def is_clifford(self) -> bool:
        return all(
            is_clifford_name(g.name, g.params) for g in self.gates if g.is_unitary
        )

    def has_measurements(self) -> bool:
        return any(g.is_measurement for g in self.gates)

    def unitary_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_unitary and g.name != "barrier"]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Full 2^n x 2^n unitary (for small circuits).  Qubit 0 is the
        least-significant bit of the state index."""
        from .unitary import circuit_unitary

        return circuit_unitary(self)

    def to_qasm(self) -> str:
        from ..emit.qasm2 import to_qasm

        return to_qasm(self)

    def emit(self, format: str, **opts) -> str:
        """Render this circuit in any registered emission format.

        Args:
            format: a :func:`repro.emit.formats` name or alias
                (``qasm2``, ``qasm3``, ``qsharp``, ``projectq``,
                ``cirq``, ``qir``, ...).
            **opts: backend-specific options.

        Returns:
            The emitted source text.
        """
        from ..emit import emit

        return emit(self, format, **opts)

    def __str__(self) -> str:
        lines = [f"QuantumCircuit({self.num_qubits} qubits, {len(self.gates)} gates)"]
        lines.extend("  " + str(g) for g in self.gates)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits} qubits, "
            f"{len(self.gates)} gates, depth {self.depth()}>"
        )

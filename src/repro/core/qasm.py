"""Deprecated location of the OpenQASM 2.0 exporter / importer.

The implementation moved to :mod:`repro.emit.qasm2`, the ``qasm2``
backend of the unified emitter registry (:mod:`repro.emit`).  This
shim keeps ``repro.core.qasm`` importable; importing it raises a
:class:`DeprecationWarning` once (the module object is cached, so
subsequent imports are silent).
"""

from __future__ import annotations

import warnings

from ..emit.qasm2 import (  # noqa: F401 - re-exported legacy surface
    QasmError,
    _format_angle,
    _gate_to_qasm,
    from_qasm,
    to_qasm,
)

warnings.warn(
    "repro.core.qasm is deprecated; use the 'qasm2' backend of the "
    "repro.emit registry (repro.emit.get('qasm2'), or "
    "repro.emit.qasm2 directly) instead",
    DeprecationWarning,
    stacklevel=2,
)

"""Circuit statistics — the ``ps -c`` command of the RevKit shell.

Collects the cost figures the paper's flow reports: total gates, depth,
T-count, T-depth, two-qubit gate count, Clifford counts, qubit count,
plus a ``gate histogram``.  The :class:`CircuitStatistics` object prints
in the style of RevKit's ``ps -c`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import QuantumCircuit


@dataclass
class CircuitStatistics:
    """Cost summary of a quantum circuit."""

    num_qubits: int
    num_gates: int
    depth: int
    t_count: int
    t_depth: int
    two_qubit_count: int
    clifford_count: int
    histogram: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return {
            "qubits": self.num_qubits,
            "gates": self.num_gates,
            "depth": self.depth,
            "t_count": self.t_count,
            "t_depth": self.t_depth,
            "two_qubit": self.two_qubit_count,
            "clifford": self.clifford_count,
        }

    def __str__(self) -> str:
        head = (
            f"qubits: {self.num_qubits}  gates: {self.num_gates}  "
            f"depth: {self.depth}  T: {self.t_count}  "
            f"T-depth: {self.t_depth}  2q: {self.two_qubit_count}"
        )
        hist = "  ".join(f"{k}={v}" for k, v in sorted(self.histogram.items()))
        return head + ("\n" + hist if hist else "")


def circuit_statistics(circuit: "QuantumCircuit") -> CircuitStatistics:
    """Compute the full statistics bundle for ``circuit``."""
    from .gates import is_clifford_name

    unitary_gates = [
        g for g in circuit.gates if g.is_unitary and g.name != "barrier"
    ]
    clifford = sum(
        1 for g in unitary_gates if is_clifford_name(g.name, g.params)
    )
    return CircuitStatistics(
        num_qubits=circuit.num_qubits,
        num_gates=len(unitary_gates),
        depth=circuit.depth(),
        t_count=circuit.t_count(),
        t_depth=circuit.t_depth(),
        two_qubit_count=circuit.two_qubit_count(),
        clifford_count=clifford,
        histogram=circuit.count_ops(),
    )

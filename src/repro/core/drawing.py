"""ASCII circuit rendering.

The paper typesets its circuits with <q|pic>; RevKit "export[s]
quantum circuits for rendering" (Sec. II).  This module provides the
equivalent here: a plain-text drawer for both quantum circuits and
reversible MCT networks, used by the examples and handy in a REPL.

Layout: one row per qubit (top row = qubit 0, matching the paper's
figures where x1 is the top wire); gates pack greedily into columns
whose wire spans do not overlap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..synthesis.reversible import ReversibleCircuit
    from .circuit import QuantumCircuit

_SYMBOLS = {
    "id": "I",
    "h": "H",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "sdg": "S+",
    "t": "T",
    "tdg": "T+",
    "sx": "V",
    "sxdg": "V+",
    "measure": "M",
    "reset": "|0>",
}


class _Column:
    """One drawing column: wire -> symbol plus occupied spans."""

    def __init__(self) -> None:
        self.cells: Dict[int, str] = {}
        self.spans: List[Tuple[int, int]] = []

    def blocked(self, low: int, high: int) -> bool:
        return any(
            not (high < s_low or low > s_high)
            for s_low, s_high in self.spans
        )

    def add(self, cells: Dict[int, str]) -> None:
        wires = sorted(cells)
        self.spans.append((wires[0], wires[-1]))
        self.cells.update(cells)

    def inside_span(self, wire: int) -> bool:
        return any(low <= wire <= high for low, high in self.spans)

    def width(self) -> int:
        return max((len(v) for v in self.cells.values()), default=1)


def _pack(cell_sets: List[Dict[int, str]]) -> List[_Column]:
    columns: List[_Column] = []
    for cells in cell_sets:
        wires = sorted(cells)
        low, high = wires[0], wires[-1]
        target = None
        # slide left while the span stays free
        for column in reversed(columns):
            if column.blocked(low, high):
                break
            target = column
        if target is None:
            target = _Column()
            columns.append(target)
        target.add(cells)
    return columns


def _render(columns: List[_Column], num_wires: int, prefix: str) -> str:
    label_width = len(f"{prefix}{num_wires - 1}: ")
    lines = []
    for wire in range(num_wires):
        parts = [f"{prefix}{wire}: ".ljust(label_width)]
        for column in columns:
            symbol = column.cells.get(wire)
            if symbol is None:
                symbol = "|" if column.inside_span(wire) else "-"
            fill = "-" if symbol != "|" or wire not in column.cells else "-"
            pad = column.width() - len(symbol)
            left = pad // 2
            body = "-" * left + symbol + "-" * (pad - left)
            if symbol == "|":
                body = body.replace("-", " ")
            parts.append(body + "--")
        lines.append("".join(parts).rstrip("- ") + "-")
    return "\n".join(lines)


def _quantum_cells(gate) -> Dict[int, str]:
    cells: Dict[int, str] = {}
    name = gate.name
    if name == "barrier":
        return {q: "|" for q in gate.targets}
    if name == "swap":
        return {gate.targets[0]: "x", gate.targets[1]: "x"}
    if name == "cswap":
        return {
            gate.controls[0]: "*",
            gate.targets[0]: "x",
            gate.targets[1]: "x",
        }
    for control in gate.controls:
        cells[control] = "*"
    base = gate.base_name
    if base == "x" and gate.controls:
        symbol = "(+)"
    elif base in ("rx", "ry", "rz", "p"):
        symbol = f"{base.capitalize()}({gate.params[0]:.3g})"
    else:
        symbol = _SYMBOLS.get(base, base.upper())
    for target in gate.targets:
        cells[target] = symbol
    return cells


def draw_circuit(circuit: "QuantumCircuit") -> str:
    """Render a quantum circuit as ASCII art."""
    columns = _pack([_quantum_cells(g) for g in circuit.gates])
    return _render(columns, circuit.num_qubits, prefix="q")


def draw_reversible(circuit: "ReversibleCircuit") -> str:
    """Render an MCT network ('*' positive, 'o' negative controls)."""
    cell_sets = []
    for gate in circuit.gates:
        cells = {
            line: ("*" if positive else "o")
            for line, positive in zip(gate.controls, gate.polarity)
        }
        cells[gate.target] = "(+)"
        cell_sets.append(cells)
    columns = _pack(cell_sets)
    return _render(columns, circuit.num_lines, prefix="x")

"""The resilience error taxonomy.

Every failure mode the resilience layer turns from a hang or a silent
swallow into a typed signal lives here, under one base class:

* :class:`ResilienceError` — the common base, a
  :class:`~repro.pipeline.state.PipelineError` so flow-context
  prefixing (``flow 'eq5' pass 3/6 ...``) applies unchanged;
* :class:`DeadlineExceeded` — a cooperative deadline ran out;
* :class:`RetriesExhausted` — a retry policy gave up on a transiently
  failing operation;
* :class:`DegradedCache` — a disk cache tier is (still) unusable.

Each error *names its site* inside the message (``cache.spill.write``,
``session.job[3]``, ...), so the site survives the pipeline's
re-raise-with-context wrapping, which rebuilds exceptions from their
message alone.
"""

from __future__ import annotations

from typing import Optional

from ..pipeline.state import PipelineError


class ResilienceError(PipelineError):
    """Base class for typed failures raised by the resilience layer.

    Args:
        message: human-readable description; by convention it starts
            with the failing site name so context-wrapping re-raises
            preserve it.
        site: optional machine-readable site name (``cache.load.read``,
            ``pipeline.pass.run.tbs``, ...); informational — the
            message is the durable carrier.
    """

    def __init__(self, message: str, site: Optional[str] = None) -> None:
        """Store the message and remember the failing site."""
        super().__init__(message)
        self.site = site


class DeadlineExceeded(ResilienceError):
    """Raised when a cooperative :class:`~.policies.Deadline` expires.

    Deadlines are checked at cooperative checkpoints (between passes,
    before single-flight waits, around retry sleeps), so the error
    surfaces at the next checkpoint after the budget runs out — never
    mid-pass.
    """


class RetriesExhausted(ResilienceError):
    """Raised when a :class:`~.policies.RetryPolicy` gives up.

    The original (last) exception is chained as ``__cause__``; the
    message records the site and the attempt count.
    """


class DegradedCache(ResilienceError):
    """Raised when a disk cache tier is required but unusable.

    :meth:`repro.pipeline.PassCache.probe` raises this in strict mode
    when the tier is still failing; degraded-mode operation itself is
    silent (memory-only) and only recorded in the cache's counters.
    """

"""The resilience layer: deadlines, retries, faults, degradation.

The ROADMAP's north star is a long-running compilation service; this
package is the reliability substrate such a service stands on:

* :mod:`~.policies` — :class:`Deadline` (a monotonic budget checked
  at cooperative checkpoints) and :class:`RetryPolicy` (bounded
  attempts, exponential backoff, deterministic jitter, a transient-
  error classifier);
* :mod:`~.errors` — the typed failure taxonomy
  (:class:`ResilienceError` → :class:`DeadlineExceeded`,
  :class:`RetriesExhausted`, :class:`DegradedCache`), all under
  :class:`~repro.pipeline.state.PipelineError` so flow-context
  wrapping applies;
* :mod:`~.faults` — named injection sites planted along the stack's
  I/O and concurrency edges, activated by a :class:`FaultPlan` (per
  test or via ``REPRO_FAULTS``) — the chaos-testing harness that
  proves every degraded path ends in a correct circuit or a typed
  error.

The wiring lives where the work happens: ``Pipeline.run``/``apply``
accept ``deadline=``/``on_error=``, :class:`~repro.pipeline.PassCache`
retries transient disk I/O and degrades to memory-only, and
``CompilerSession.compile_many``/``sweep`` take ``job_timeout=`` /
``retry=`` so one poisoned job cannot sink a batch.
"""

from .errors import (
    DeadlineExceeded,
    DegradedCache,
    ResilienceError,
    RetriesExhausted,
)
from .faults import (
    ACTIONS,
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedOSError,
    InjectedTimeout,
    active_plan,
    fault_point,
    install,
    is_injected,
    mutate_payload,
    plan_from_env,
)
from .policies import Deadline, RetryPolicy, as_deadline, as_retry

__all__ = [
    "ResilienceError",
    "DeadlineExceeded",
    "RetriesExhausted",
    "DegradedCache",
    "Deadline",
    "RetryPolicy",
    "as_deadline",
    "as_retry",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedOSError",
    "InjectedTimeout",
    "ACTIONS",
    "KNOWN_SITES",
    "active_plan",
    "fault_point",
    "install",
    "is_injected",
    "mutate_payload",
    "plan_from_env",
]

"""Deadlines and retry policies — the resilience layer's vocabulary.

Two plain dataclasses every execution layer threads through:

* :class:`Deadline` — a monotonic wall-clock budget, checked at
  cooperative checkpoints (:meth:`Deadline.check`) and used to bound
  waits (:meth:`Deadline.remaining`);
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (seeded, so two runs with the same policy
  sleep identically — reproducibility is a feature of this codebase,
  and its chaos tests depend on it), plus a transient-error
  classifier deciding what is worth retrying at all.

Both are immutable values: sharing one policy across threads, jobs or
pickled process-pool tasks is safe by construction.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from .errors import DeadlineExceeded, RetriesExhausted


def _is_transient_default(error: BaseException) -> bool:
    """Classify an exception as transient (worth retrying).

    Transient: OS-level I/O errors (disk hiccups, the classic
    serving-system retry case), timeouts, connection resets, and any
    exception whose class sets a truthy ``transient`` attribute (the
    fault injector's marker).  Everything else — type errors, broken
    flows, verification failures — is deterministic and retrying it
    only wastes the budget.
    """
    if getattr(error, "transient", False):
        return True
    return isinstance(error, (OSError, TimeoutError, ConnectionError))


@dataclass(frozen=True)
class Deadline:
    """A monotonic compute budget, checked cooperatively.

    Create one with :meth:`after`; pass it down through
    ``repro.compile(deadline=...)`` / ``Pipeline.run(deadline=...)``.
    Checkpoints call :meth:`check`, waits bound themselves by
    :meth:`remaining` — nothing is interrupted preemptively, so a
    deadline can only fire between cooperative steps.

    Attributes:
        expires_at: absolute :func:`time.monotonic` expiry instant.
        budget: the original budget in seconds (for error messages).
    """

    expires_at: float
    budget: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Return a deadline expiring ``seconds`` from now.

        Args:
            seconds: the budget; must be positive.

        Returns:
            The new :class:`Deadline`.
        """
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive: {seconds}")
        return cls(expires_at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Return the seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Return whether the budget has run out."""
        return self.remaining() <= 0.0

    def check(self, site: str = "") -> None:
        """Raise :class:`~.errors.DeadlineExceeded` once expired.

        Args:
            site: checkpoint name baked into the error message
                (``pipeline.run``, ``session.job[2]``, ...).
        """
        if self.expired():
            where = site or "deadline"
            raise DeadlineExceeded(
                f"{where}: deadline of {self.budget:g}s exceeded "
                f"(over by {-self.remaining():.3f}s)",
                site=site or None,
            )

    def bound(self, timeout: Optional[float]) -> Optional[float]:
        """Clamp a wait ``timeout`` so it cannot outlive the deadline.

        Args:
            timeout: the wait's own timeout; ``None`` means unbounded.

        Returns:
            ``min(timeout, remaining)`` floored at zero.
        """
        remaining = max(self.remaining(), 0.0)
        if timeout is None:
            return remaining
        return min(timeout, remaining)


def as_deadline(
    value: Union["Deadline", float, int, None]
) -> Optional[Deadline]:
    """Coerce a deadline argument: seconds, a Deadline, or ``None``.

    Args:
        value: ``None`` (no deadline), a number of seconds from now,
            or an existing :class:`Deadline` (shared across layers so
            nested budgets do not stack).

    Returns:
        The resolved :class:`Deadline` or ``None``.
    """
    if value is None or isinstance(value, Deadline):
        return value
    return Deadline.after(float(value))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + deterministic jitter.

    Attributes:
        max_attempts: total attempts including the first (1 disables
            retrying while keeping the classifier/error shaping).
        base_delay: sleep before the first retry, in seconds.
        multiplier: backoff growth factor per further retry.
        max_delay: cap on any single sleep.
        jitter: fraction of each delay replaced by deterministic
            noise (0 disables; 0.25 means the sleep varies ±25%).
        seed: seeds the jitter; two policies with equal fields sleep
            identically, attempt for attempt.
        classifier: predicate deciding whether an exception is
            transient; ``None`` selects the default (OS/timeout/
            connection errors plus ``transient``-marked exceptions).
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    classifier: Optional[Callable[[BaseException], bool]] = None

    def __post_init__(self) -> None:
        """Validate the attempt and delay parameters."""
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def is_transient(self, error: BaseException) -> bool:
        """Return whether ``error`` is worth retrying.

        Args:
            error: the exception an attempt raised.
        """
        classify = self.classifier or _is_transient_default
        return bool(classify(error))

    def backoff(self, attempt: int) -> float:
        """Return the deterministic sleep before retry ``attempt``.

        Args:
            attempt: zero-based index of the retry about to happen.

        Returns:
            ``base_delay * multiplier**attempt`` capped at
            ``max_delay``, with seeded jitter applied.
        """
        delay = min(
            self.base_delay * (self.multiplier ** attempt), self.max_delay
        )
        if self.jitter and delay > 0:
            digest = hashlib.sha256(
                f"{self.seed}:{attempt}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / float(2 ** 64)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(delay, 0.0)

    def call(
        self,
        fn: Callable[[], Any],
        site: str = "",
        deadline: Optional[Deadline] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn`` under this policy and return its result.

        Non-transient errors propagate immediately (retrying a
        deterministic failure only wastes the budget); transient ones
        are retried up to ``max_attempts`` with backoff.  A deadline,
        when given, is checked before every attempt and every sleep,
        so a retry loop can never outlive its budget.

        Args:
            fn: zero-argument operation to attempt.
            site: name used in error messages (``cache.spill.write``).
            deadline: optional budget bounding the whole loop.
            sleep: injectable sleep (tests pass a recorder).

        Returns:
            ``fn()``'s result from the first successful attempt.

        Raises:
            RetriesExhausted: every attempt failed transiently; the
                last error is chained as ``__cause__``.
            DeadlineExceeded: the deadline expired between attempts.
        """
        where = site or getattr(fn, "__name__", "operation")
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if deadline is not None:
                deadline.check(site=where)
            try:
                return fn()
            except BaseException as error:  # noqa: B036 - reclassified
                if not self.is_transient(error):
                    raise
                last = error
            if attempt + 1 < self.max_attempts:
                pause = self.backoff(attempt)
                if deadline is not None:
                    pause = deadline.bound(pause)
                if pause:
                    sleep(pause)
        raise RetriesExhausted(
            f"{where}: {self.max_attempts} attempt(s) failed; "
            f"last error: {type(last).__name__}: {last}",
            site=site or None,
        ) from last


def as_retry(
    value: Union[RetryPolicy, int, None]
) -> Optional[RetryPolicy]:
    """Coerce a retry argument: attempt count, policy, or ``None``.

    Args:
        value: ``None`` (no retries), an integer total attempt count
            (with default backoff), or a full :class:`RetryPolicy`.

    Returns:
        The resolved :class:`RetryPolicy` or ``None``.
    """
    if value is None or isinstance(value, RetryPolicy):
        return value
    return RetryPolicy(max_attempts=int(value))

"""Fault injection: named sites, activatable plans, chaos testing.

A serving system's degraded paths are only as real as the tests that
exercise them.  This module plants *named injection points* along the
stack's I/O and concurrency edges; a :class:`FaultPlan` activates
faults at those sites — raise an error, delay, hang, or tear a write —
with per-spec trigger counts and a seed, so every chaos scenario is
deterministic and every exercised site is accounted for in
:meth:`FaultPlan.report`.

With no plan installed every :func:`fault_point` is a single ``None``
check — the production hot path pays one pointer comparison.

Plans activate per test (``with plan.active(): ...``) or process-wide
via the ``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS='cache.spill.write:raise:2;pipeline.pass.run.*:delay:1:0.2'

Each ``;``-separated segment is ``site:action[:times[:seconds[:error]]]``
(``times`` may be ``*`` for every hit); a ``seed=N`` segment seeds the
plan.  The environment form reaches process-pool workers too, since
they inherit the variable.

Registered sites (patterns match with :mod:`fnmatch`):

=============================  =======================================
``cache.spill.write``          disk-tier entry write (spill)
``cache.load.read``            disk-tier entry read
``cache.store``                memory-tier insert
``cache.gc.scan``              gc directory scan
``cache.gc.unlink``            gc entry eviction
``pipeline.apply.claim``       single-flight key claim
``pipeline.apply.wait``        single-flight follower wait
``pipeline.pass.run.<name>``   pass execution (per pass name)
``session.dispatch``           session worker job dispatch
=============================  =======================================
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Every injection site planted in the stack (``<name>`` expands per
#: pass); :class:`FaultSpec` patterns are matched against these.
KNOWN_SITES: Tuple[str, ...] = (
    "cache.spill.write",
    "cache.load.read",
    "cache.store",
    "cache.gc.scan",
    "cache.gc.unlink",
    "pipeline.apply.claim",
    "pipeline.apply.wait",
    "pipeline.pass.run.<name>",
    "session.dispatch",
)

#: Actions a :class:`FaultSpec` may take at its site.
ACTIONS: Tuple[str, ...] = ("raise", "delay", "hang", "torn")

#: How long a ``hang`` action blocks at most (a *bounded* hang: long
#: enough to trip any reasonable deadline or follower timeout, short
#: enough that a leaked plan cannot wedge a test session forever).
HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """A generic injected failure (marked transient for retry tests)."""

    transient = True


class InjectedOSError(OSError):
    """An injected disk error, caught wherever real ``OSError`` is."""


class InjectedTimeout(TimeoutError):
    """An injected timeout (transient per the default classifier)."""


_ERRORS = {
    "oserror": InjectedOSError,
    "fault": InjectedFault,
    "timeout": InjectedTimeout,
}


def is_injected(error: BaseException) -> bool:
    """Return whether an exception was raised by the fault injector.

    Args:
        error: any exception.
    """
    return isinstance(
        error, (InjectedFault, InjectedOSError, InjectedTimeout)
    )


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where, what, how often.

    Attributes:
        site: exact site name or :mod:`fnmatch` pattern
            (``pipeline.pass.run.*``).
        action: ``raise`` (throw ``error``), ``delay`` (sleep
            ``seconds``), ``hang`` (block until released, at most
            :data:`HANG_SECONDS`), or ``torn`` (truncate the payload
            at a torn-write site).
        times: how many matching hits trigger before the spec goes
            dormant; ``None`` triggers on every hit.
        skip: let the first ``skip`` matching hits through untouched
            (fail the *second* write, not the first).
        seconds: sleep length for ``delay``; cap override for
            ``hang``.
        error: which exception ``raise`` throws — ``oserror``
            (default), ``fault``, or ``timeout``.
    """

    site: str
    action: str = "raise"
    times: Optional[int] = 1
    skip: int = 0
    seconds: float = 0.05
    error: str = "oserror"

    def __post_init__(self) -> None:
        """Validate the action and error names."""
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; one of "
                f"{', '.join(ACTIONS)}"
            )
        if self.error not in _ERRORS:
            raise ValueError(
                f"unknown fault error {self.error!r}; one of "
                f"{', '.join(_ERRORS)}"
            )

    def matches(self, site: str) -> bool:
        """Return whether this spec applies to ``site``.

        Args:
            site: the concrete site name being visited.
        """
        return site == self.site or fnmatch.fnmatchcase(site, self.site)


class FaultPlan:
    """A named set of faults, activatable as the process's plan.

    Thread-safe: hit counters and trigger bookkeeping take an internal
    lock, so chaos tests may hammer sites from many threads.

    Args:
        specs: the :class:`FaultSpec` entries (or plain dicts with the
            same fields).
        seed: seeds deterministic choices (torn-write truncation
            points); recorded in :meth:`report`.
        name: label for reports (defaults to ``plan``).
    """

    def __init__(
        self,
        specs: Any = (),
        seed: int = 0,
        name: str = "plan",
    ) -> None:
        """Normalize the specs and reset all counters."""
        self.specs: List[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        ]
        self.seed = int(seed)
        self.name = name
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._spec_hits: Dict[int, int] = {}
        self._triggered: Dict[int, int] = {}
        self._outcomes: Dict[str, Dict[str, int]] = {}
        self._release = threading.Event()

    # ------------------------------------------------------------------
    def _visit(self, site: str) -> Optional[Tuple[FaultSpec, int]]:
        """Record a site hit; return the triggering (spec, hit#) if any."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for index, spec in enumerate(self.specs):
                if not spec.matches(site):
                    continue
                seen = self._spec_hits.get(index, 0)
                self._spec_hits[index] = seen + 1
                if seen < spec.skip:
                    continue
                fired = self._triggered.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._triggered[index] = fired + 1
                outcome = self._outcomes.setdefault(site, {})
                outcome[spec.action] = outcome.get(spec.action, 0) + 1
                return spec, hit
        return None

    def fire(self, site: str) -> None:
        """Visit ``site`` and execute any matching fault action.

        Args:
            site: the concrete site name.

        Raises:
            InjectedOSError: (or the spec's chosen error) on a
                ``raise`` action.
        """
        triggered = self._visit(site)
        if triggered is None:
            return
        spec, _hit = triggered
        if spec.action == "raise":
            raise _ERRORS[spec.error](f"injected fault at {site}")
        if spec.action == "delay":
            self._release.wait(spec.seconds)
        elif spec.action == "hang":
            self._release.wait(min(spec.seconds or HANG_SECONDS,
                                   HANG_SECONDS))
        # "torn" only acts at payload sites via mutate()

    def mutate(self, site: str, payload: str) -> str:
        """Apply a ``torn`` fault to a payload about to be written.

        Args:
            site: the torn-write-capable site name.
            payload: the full serialized payload.

        Returns:
            The payload, truncated at a seed-deterministic point when
            a ``torn`` spec triggers, unchanged otherwise.
        """
        triggered = self._visit(site)
        if triggered is None:
            return payload
        spec, hit = triggered
        if spec.action == "raise":
            raise _ERRORS[spec.error](f"injected fault at {site}")
        if spec.action != "torn" or len(payload) < 2:
            return payload
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{hit}".encode()
        ).digest()
        cut = 1 + int.from_bytes(digest[:4], "big") % (len(payload) - 1)
        return payload[:cut]

    def release(self) -> None:
        """Unblock every pending ``delay``/``hang`` immediately."""
        self._release.set()

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Return the exercised-sites × outcomes accounting.

        Returns:
            A dict with the plan ``name``, ``seed``, per-site ``hits``
            and triggered ``outcomes`` (action → count), and the
            per-spec trigger totals.
        """
        with self._lock:
            return {
                "name": self.name,
                "seed": self.seed,
                "sites": dict(sorted(self._hits.items())),
                "outcomes": {
                    site: dict(actions)
                    for site, actions in sorted(self._outcomes.items())
                },
                "specs": [
                    {
                        "site": spec.site,
                        "action": spec.action,
                        "times": spec.times,
                        "triggered": self._triggered.get(index, 0),
                    }
                    for index, spec in enumerate(self.specs)
                ],
            }

    def active(self) -> "_PlanActivation":
        """Return a context manager installing this plan.

        Returns:
            A context manager; on exit the previous plan is restored
            and any pending hangs are released.
        """
        return _PlanActivation(self)


class _PlanActivation:
    """Context manager installing/uninstalling one plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self.previous = install(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        self.plan.release()
        install(self.previous)


# ----------------------------------------------------------------------
# the process-wide active plan
# ----------------------------------------------------------------------
_LOCK = threading.Lock()
_PLAN: Optional[FaultPlan] = None
_ENV_LOADED = False


def plan_from_env(variable: str = "REPRO_FAULTS") -> Optional[FaultPlan]:
    """Parse a :class:`FaultPlan` from an environment variable.

    Args:
        variable: the variable to read (``REPRO_FAULTS``).

    Returns:
        The parsed plan, or ``None`` when the variable is unset or
        empty.

    Raises:
        ValueError: when a segment is malformed (the message shows the
            expected ``site:action[:times[:seconds[:error]]]`` shape).
    """
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return None
    specs: List[FaultSpec] = []
    seed = 0
    for segment in raw.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        if segment.startswith("seed="):
            seed = int(segment[len("seed="):])
            continue
        parts = segment.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"malformed {variable} segment {segment!r}; expected "
                "site:action[:times[:seconds[:error]]]"
            )
        fields: Dict[str, Any] = {"site": parts[0], "action": parts[1]}
        if len(parts) > 2 and parts[2]:
            fields["times"] = None if parts[2] == "*" else int(parts[2])
        if len(parts) > 3 and parts[3]:
            fields["seconds"] = float(parts[3])
        if len(parts) > 4 and parts[4]:
            fields["error"] = parts[4]
        specs.append(FaultSpec(**fields))
    return FaultPlan(specs, seed=seed, name=f"env:{variable}")


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process's active plan.

    Args:
        plan: the plan to activate, or ``None`` to deactivate.

    Returns:
        The previously active plan (so callers can restore it).
    """
    global _PLAN, _ENV_LOADED
    with _LOCK:
        previous = _PLAN
        _PLAN = plan
        _ENV_LOADED = True  # an explicit install overrides the env
    return previous


def active_plan() -> Optional[FaultPlan]:
    """Return the active plan, loading ``REPRO_FAULTS`` on first use."""
    global _PLAN, _ENV_LOADED
    if not _ENV_LOADED:
        with _LOCK:
            if not _ENV_LOADED:
                _PLAN = plan_from_env()
                _ENV_LOADED = True
    return _PLAN


def fault_point(site: str) -> None:
    """Visit an injection site (no-op without an active plan).

    Args:
        site: the site's registered name.

    Raises:
        InjectedOSError: (or another injected error) when the active
            plan has a triggering ``raise`` spec for this site.
    """
    plan = active_plan()
    if plan is not None:
        plan.fire(site)


def mutate_payload(site: str, payload: str) -> str:
    """Pass a payload through the active plan's torn-write faults.

    Args:
        site: the torn-write-capable site name.
        payload: the serialized payload about to be written.

    Returns:
        The (possibly truncated) payload.
    """
    plan = active_plan()
    if plan is None:
        return payload
    return plan.mutate(site, payload)

"""Benchmark function generators — the ``revgen`` command.

Provides the reversible benchmark functions the RevKit flow is
demonstrated on, most importantly the hidden-weighted-bit function of
the paper's Eq. (5) pipeline (``revgen --hwb 4``), plus generators used
by the benches (random permutations, modular adders, bit rotations,
Maiorana–McFarland instances).
"""

from __future__ import annotations

from typing import Optional

from ..boolean.bent import MaioranaMcFarland
from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable


def hwb(num_bits: int) -> BitPermutation:
    """Hidden-weighted-bit function (cyclic shift by Hamming weight)."""
    return BitPermutation.hidden_weighted_bit(num_bits)


def random_permutation(num_bits: int, seed: Optional[int] = None) -> BitPermutation:
    return BitPermutation.random(num_bits, seed=seed)


def modular_adder(num_bits: int, constant: int) -> BitPermutation:
    """x -> x + c (mod 2^n), the constant-adder of Shor-style arithmetic."""
    size = 1 << num_bits
    return BitPermutation([(x + constant) % size for x in range(size)])


def bit_rotation(num_bits: int, amount: int = 1) -> BitPermutation:
    """Cyclic bit rotation by ``amount`` positions."""
    size = 1 << num_bits
    amount %= num_bits

    def rot(x: int) -> int:
        return ((x << amount) | (x >> (num_bits - amount))) & (size - 1)

    return BitPermutation([rot(x) for x in range(size)])


def gray_code(num_bits: int) -> BitPermutation:
    """x -> x XOR (x >> 1), the binary-reflected Gray code."""
    return BitPermutation([x ^ (x >> 1) for x in range(1 << num_bits)])


def inner_product_bent(half_vars: int) -> TruthTable:
    """The IP bent function on 2*half_vars variables (self-dual)."""
    return TruthTable.inner_product(half_vars)


def maiorana_mcfarland(
    half_vars: int, seed: Optional[int] = None
) -> TruthTable:
    """A random Maiorana–McFarland bent function's truth table."""
    return MaioranaMcFarland.random(half_vars, seed=seed).truth_table()


def random_function(num_vars: int, seed: Optional[int] = None) -> TruthTable:
    import random as _random

    rng = _random.Random(seed)
    return TruthTable(num_vars, rng.getrandbits(1 << num_vars))

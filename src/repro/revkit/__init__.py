"""RevKit-style command shell and benchmark generators (Sec. VI)."""

from . import generators
from .shell import RevKitShell, ShellError, dbs, tbs

__all__ = ["generators", "RevKitShell", "ShellError", "dbs", "tbs"]

"""The RevKit command shell.

RevKit "is executed as a command-based shell application, which allows
to perform synthesis scripts by combining a variety of different
commands" (Sec. VI).  The paper's running pipeline, Eq. (5):

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

:class:`RevKitShell` implements that interface over this package's
algorithms.  Commands operate on a store holding the current function
(permutation or truth table), the current reversible (MCT) circuit,
and the current quantum circuit.  Every command is also exposed as a
Python method, mirroring RevKit's Python bindings
(``revkit.revgen(hwb=4)``).
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional, Union

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..core.statistics import circuit_statistics
from ..mapping.barenco import map_to_clifford_t
from ..optimization.simplify import cancel_adjacent_gates, simplify_reversible
from ..optimization.templates import template_optimize
from ..optimization.tpar import tpar_optimize
from ..synthesis.decomposition import decomposition_based_synthesis
from ..synthesis.esop_based import esop_synthesis
from ..synthesis.exact import exact_synthesis
from ..synthesis.reversible import ReversibleCircuit
from ..synthesis.transformation import (
    bidirectional_synthesis,
    transformation_based_synthesis,
)
from . import generators


class ShellError(RuntimeError):
    """Raised on invalid commands or missing store entries."""


class RevKitShell:
    """Command interpreter with a function/circuit store."""

    def __init__(self) -> None:
        self.function: Optional[Union[BitPermutation, TruthTable]] = None
        self.reversible: Optional[ReversibleCircuit] = None
        self.quantum: Optional[QuantumCircuit] = None
        self.log: List[str] = []
        self._commands: Dict[str, Callable[..., str]] = {
            "revgen": self._cmd_revgen,
            "tbs": self._cmd_tbs,
            "dbs": self._cmd_dbs,
            "esopbs": self._cmd_esopbs,
            "exs": self._cmd_exact,
            "revsimp": self._cmd_revsimp,
            "templ": self._cmd_templ,
            "rptm": self._cmd_rptm,
            "tpar": self._cmd_tpar,
            "cancel": self._cmd_cancel,
            "ps": self._cmd_ps,
            "simulate": self._cmd_simulate,
            "verify": self._cmd_verify,
            "write_qasm": self._cmd_write_qasm,
        }

    # ------------------------------------------------------------------
    # command-line entry point
    # ------------------------------------------------------------------
    def run(self, script: str) -> List[str]:
        """Execute a semicolon-separated command script (Eq. (5) style).

        Returns one output string per command, also kept in ``log``.
        """
        outputs = []
        for part in script.split(";"):
            command = part.strip()
            if not command:
                continue
            outputs.append(self.execute(command))
        return outputs

    def execute(self, command: str) -> str:
        tokens = shlex.split(command)
        name, args = tokens[0], tokens[1:]
        handler = self._commands.get(name)
        if handler is None:
            raise ShellError(f"unknown command {name!r}")
        output = handler(*args)
        self.log.append(f"{command}: {output}")
        return output

    # ------------------------------------------------------------------
    # store helpers
    # ------------------------------------------------------------------
    def _need_permutation(self) -> BitPermutation:
        if isinstance(self.function, BitPermutation):
            return self.function
        raise ShellError("no permutation in store (run revgen first)")

    def _need_reversible(self) -> ReversibleCircuit:
        if self.reversible is None:
            raise ShellError("no reversible circuit in store")
        return self.reversible

    def _need_quantum(self) -> QuantumCircuit:
        if self.quantum is None:
            raise ShellError("no quantum circuit in store (run rptm first)")
        return self.quantum

    # ------------------------------------------------------------------
    # commands (also usable as python methods)
    # ------------------------------------------------------------------
    def _cmd_revgen(self, *args: str) -> str:
        options = _parse_options(args)
        if "hwb" in options:
            self.function = generators.hwb(int(options["hwb"]))
        elif "random" in options:
            seed = int(options.get("seed", 0))
            self.function = generators.random_permutation(
                int(options["random"]), seed=seed
            )
        elif "adder" in options:
            self.function = generators.modular_adder(
                int(options["adder"]), int(options.get("const", 1))
            )
        elif "rotate" in options:
            self.function = generators.bit_rotation(
                int(options["rotate"]), int(options.get("amount", 1))
            )
        elif "gray" in options:
            self.function = generators.gray_code(int(options["gray"]))
        elif "bent" in options:
            self.function = generators.inner_product_bent(int(options["bent"]))
        elif "randfunc" in options:
            seed = int(options.get("seed", 0))
            self.function = generators.random_function(
                int(options["randfunc"]), seed=seed
            )
        else:
            raise ShellError(
                "revgen needs one of --hwb/--random/--adder/--rotate/"
                "--gray/--bent/--randfunc"
            )
        kind = type(self.function).__name__
        return f"generated {kind}"

    def revgen(self, **options) -> str:
        return self._cmd_revgen(
            *[f"--{k}={v}" for k, v in options.items()]
        )

    def _cmd_tbs(self, *args: str) -> str:
        options = _parse_options(args)
        perm = self._need_permutation()
        if "bidirectional" in options or "bidir" in options:
            self.reversible = bidirectional_synthesis(perm)
        else:
            self.reversible = transformation_based_synthesis(perm)
        return f"{len(self.reversible)} gates"

    def tbs(self, bidirectional: bool = False) -> str:
        return self._cmd_tbs(*(["--bidirectional"] if bidirectional else []))

    def _cmd_dbs(self, *args: str) -> str:
        perm = self._need_permutation()
        self.reversible = decomposition_based_synthesis(perm)
        return f"{len(self.reversible)} gates"

    def dbs(self) -> str:
        return self._cmd_dbs()

    def _cmd_esopbs(self, *args: str) -> str:
        if not isinstance(self.function, TruthTable):
            raise ShellError("esopbs needs a single-output truth table")
        self.reversible = esop_synthesis(self.function)
        return f"{len(self.reversible)} gates on {self.reversible.num_lines} lines"

    def esopbs(self) -> str:
        return self._cmd_esopbs()

    def _cmd_exact(self, *args: str) -> str:
        perm = self._need_permutation()
        circuit = exact_synthesis(perm)
        if circuit is None:
            raise ShellError("exact synthesis exceeded the gate bound")
        self.reversible = circuit
        return f"{len(circuit)} gates (optimal)"

    def exs(self) -> str:
        return self._cmd_exact()

    def _cmd_revsimp(self, *args: str) -> str:
        before = len(self._need_reversible())
        self.reversible = simplify_reversible(self.reversible)
        return f"{before} -> {len(self.reversible)} gates"

    def revsimp(self) -> str:
        return self._cmd_revsimp()

    def _cmd_templ(self, *args: str) -> str:
        before = len(self._need_reversible())
        self.reversible = template_optimize(self.reversible)
        return f"{before} -> {len(self.reversible)} gates"

    def templ(self) -> str:
        return self._cmd_templ()

    def _cmd_rptm(self, *args: str) -> str:
        options = _parse_options(args)
        relative_phase = "no-relative-phase" not in options
        self.quantum = map_to_clifford_t(
            self._need_reversible(), relative_phase=relative_phase
        )
        return (
            f"{len(self.quantum)} gates, T={self.quantum.t_count()}, "
            f"{self.quantum.num_qubits} qubits"
        )

    def rptm(self, relative_phase: bool = True) -> str:
        return self._cmd_rptm(
            *([] if relative_phase else ["--no-relative-phase"])
        )

    def _cmd_tpar(self, *args: str) -> str:
        circuit = self._need_quantum()
        before = circuit.t_count()
        optimized = tpar_optimize(cancel_adjacent_gates(circuit))
        optimized = cancel_adjacent_gates(optimized)
        self.quantum = optimized
        return f"T: {before} -> {optimized.t_count()}"

    def tpar(self) -> str:
        return self._cmd_tpar()

    def _cmd_cancel(self, *args: str) -> str:
        circuit = self._need_quantum()
        before = len(circuit)
        self.quantum = cancel_adjacent_gates(circuit)
        return f"{before} -> {len(self.quantum)} gates"

    def cancel(self) -> str:
        return self._cmd_cancel()

    def _cmd_ps(self, *args: str) -> str:
        options = _parse_options(args)
        if "c" in options or "-c" in options:
            circuit = self.quantum
            if circuit is not None:
                return str(circuit_statistics(circuit))
            if self.reversible is not None:
                rev = self.reversible
                return (
                    f"lines: {rev.num_lines}  gates: {len(rev)}  "
                    f"quantum-cost: {rev.quantum_cost()}"
                )
            raise ShellError("nothing in store to print")
        if self.function is not None:
            if isinstance(self.function, BitPermutation):
                return (
                    f"permutation on {self.function.num_bits} bits, "
                    f"{len(self.function.cycles())} nontrivial cycles"
                )
            return (
                f"function on {self.function.num_vars} variables, "
                f"{self.function.count_ones()} ones"
            )
        raise ShellError("nothing in store to print")

    def ps(self, circuit: bool = False) -> str:
        return self._cmd_ps(*(["-c"] if circuit else []))

    def _cmd_simulate(self, *args: str) -> str:
        rev = self._need_reversible()
        perm = rev.permutation()
        if isinstance(self.function, BitPermutation):
            ok = perm == self.function
            return f"matches specification: {ok}"
        return f"permutation head: {perm.image[:8]}"

    def simulate(self) -> str:
        return self._cmd_simulate()

    def _cmd_verify(self, *args: str) -> str:
        """Check the quantum circuit against the reversible circuit.

        The mapped circuit may use extra (clean) ancilla lines; the
        check is that |x>|0> -> e^{i phi}|P(x)>|0> for every data
        input x, with P the reversible circuit's permutation
        (Sec. IX's verification obligation).  Limited to widths where
        a dense unitary is feasible.
        """
        import numpy as np

        from ..core.unitary import circuit_unitary

        quantum = self._need_quantum()
        reversible = self._need_reversible()
        if quantum.num_qubits > 11:
            raise ShellError("circuit too wide for dense verification")
        perm = reversible.permutation()
        unitary = circuit_unitary(quantum)
        n = reversible.num_lines
        for x in range(1 << n):
            column = unitary[:, x]
            index = int(np.argmax(np.abs(column)))
            if (
                abs(abs(column[index]) - 1.0) > 1e-9
                or np.abs(column).sum() - abs(column[index]) > 1e-9
                or index != perm(x)
            ):
                return f"equivalent: False (mismatch at input {x})"
        return "equivalent: True"

    def verify(self) -> str:
        return self._cmd_verify()

    def _cmd_write_qasm(self, *args: str) -> str:
        if not args:
            raise ShellError("write_qasm needs a path")
        circuit = self._need_quantum()
        text = circuit.to_qasm()
        with open(args[0], "w", encoding="utf-8") as handle:
            handle.write(text)
        return f"wrote {len(text.splitlines())} lines to {args[0]}"

    def write_qasm(self, path: str) -> str:
        return self._cmd_write_qasm(path)


def _parse_options(args) -> Dict[str, str]:
    """Parse ``--key value`` / ``--key=value`` / ``-c`` style options."""
    options: Dict[str, str] = {}
    tokens = list(args)
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.startswith("--"):
            body = token[2:]
            if "=" in body:
                key, value = body.split("=", 1)
                options[key] = value
            elif index + 1 < len(tokens) and not tokens[index + 1].startswith("-"):
                options[body] = tokens[index + 1]
                index += 1
            else:
                options[body] = "1"
        elif token.startswith("-"):
            options[token[1:]] = "1"
        else:
            options[token] = "1"
        index += 1
    return options


# synthesis handles for PermutationOracle(synth=...), paper-style
tbs = transformation_based_synthesis
dbs = decomposition_based_synthesis

"""The RevKit command shell.

RevKit "is executed as a command-based shell application, which allows
to perform synthesis scripts by combining a variety of different
commands" (Sec. VI).  The paper's running pipeline, Eq. (5):

    revgen --hwb 4; tbs; revsimp; rptm; tpar; ps -c

:class:`RevKitShell` implements that interface over this package's
algorithms.  Commands operate on a store holding the current function
(permutation or truth table), the current reversible (MCT) circuit,
and the current quantum circuit.  Every command is also exposed as a
Python method, mirroring RevKit's Python bindings
(``revkit.revgen(hwb=4)``).

Since PR 2 the shell is a thin front-end over the pass manager: the
store is a :class:`~repro.pipeline.FlowState` and every synthesis /
optimization / mapping command dispatches one
:class:`~repro.pipeline.Pass` through a shared
:class:`~repro.pipeline.Pipeline`, inheriting its per-pass timing,
delta records and content-keyed result cache.  ``shell.report()``
prints the accumulated per-pass statistics.

Since PR 5 the ``write_<format>`` commands resolve through the
:mod:`repro.emit` registry: next to the historical ``write_qasm``,
every registered format gets a command for free (``write_qasm3``,
``write_qsharp``, ``write_projectq``, ``write_cirq``, ``write_qir``,
and any backend registered at runtime).

Since PR 8 the ``sim_<engine>`` commands resolve the same way through
the :mod:`repro.engines` registry: ``sim_statevector``,
``sim_stabilizer``, ``sim_density_matrix``, ``sim_monte_carlo`` (and
their aliases, e.g. ``sim_dm``) run the current quantum circuit and
print its outcome histogram; ``--shots``, ``--noise`` and ``--seed``
options pass through.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional, Union

from ..boolean.permutation import BitPermutation
from ..boolean.truth_table import TruthTable
from ..core.circuit import QuantumCircuit
from ..core.statistics import circuit_statistics
from ..pipeline import (
    GENERATOR_KINDS,
    CancelPass,
    FlowState,
    GeneratePass,
    MapToCliffordTPass,
    Pass,
    Pipeline,
    PipelineError,
    SimplifyPass,
    SynthesisPass,
    TemplatePass,
    TparPass,
)
from ..pipeline.runner import PassRecord
from ..pipeline.verification import check_mapped_circuit
from ..synthesis.decomposition import decomposition_based_synthesis
from ..synthesis.reversible import ReversibleCircuit
from ..synthesis.transformation import transformation_based_synthesis


class ShellError(RuntimeError):
    """Raised on invalid commands or missing store entries."""


class RevKitShell:
    """Command interpreter with a function/circuit store.

    Args:
        pipeline: the pass-manager runner commands dispatch through;
            by default a fresh :class:`~repro.pipeline.Pipeline` using
            the process-wide result cache, so re-running a script
            replays cached pass results.
    """

    def __init__(self, pipeline: Optional[Pipeline] = None) -> None:
        self.state = FlowState()
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self.log: List[str] = []
        self._commands: Dict[str, Callable[..., str]] = {
            "revgen": self._cmd_revgen,
            "tbs": self._cmd_tbs,
            "dbs": self._cmd_dbs,
            "esopbs": self._cmd_esopbs,
            "exs": self._cmd_exact,
            "revsimp": self._cmd_revsimp,
            "templ": self._cmd_templ,
            "rptm": self._cmd_rptm,
            "tpar": self._cmd_tpar,
            "cancel": self._cmd_cancel,
            "ps": self._cmd_ps,
            "simulate": self._cmd_simulate,
            "verify": self._cmd_verify,
            "backends": self._cmd_backends,
        }

    # ------------------------------------------------------------------
    # store access (backed by the pipeline FlowState)
    # ------------------------------------------------------------------
    @property
    def function(self) -> Optional[Union[BitPermutation, TruthTable]]:
        """The current Boolean specification."""
        return self.state.function

    @function.setter
    def function(self, value) -> None:
        self.state.function = value

    @property
    def reversible(self) -> Optional[ReversibleCircuit]:
        """The current reversible (MCT) circuit."""
        return self.state.reversible

    @reversible.setter
    def reversible(self, value) -> None:
        self.state.reversible = value

    @property
    def quantum(self) -> Optional[QuantumCircuit]:
        """The current quantum circuit."""
        return self.state.quantum

    @quantum.setter
    def quantum(self, value) -> None:
        self.state.quantum = value

    # ------------------------------------------------------------------
    # command-line entry point
    # ------------------------------------------------------------------
    def run(self, script: str) -> List[str]:
        """Execute a semicolon-separated command script (Eq. (5) style).

        Returns one output string per command, also kept in ``log``.
        """
        outputs = []
        for part in script.split(";"):
            command = part.strip()
            if not command:
                continue
            outputs.append(self.execute(command))
        return outputs

    def execute(self, command: str) -> str:
        """Execute one command line and return its output string."""
        tokens = shlex.split(command)
        name, args = tokens[0], tokens[1:]
        handler = self._commands.get(name)
        if handler is None and name.startswith("write_"):
            format_name = name[len("write_"):]
            handler = lambda *a: self._cmd_write(format_name, *a)  # noqa: E731
        if handler is None and name.startswith("sim_"):
            engine_name = name[len("sim_"):]
            handler = lambda *a: self._cmd_sim(engine_name, *a)  # noqa: E731
        if handler is None:
            raise ShellError(
                f"unknown command {name!r} (write_<format> accepts "
                "any repro.emit format, sim_<engine> any repro.engines "
                "backend)"
            )
        output = handler(*args)
        self.log.append(f"{command}: {output}")
        return output

    def report(self) -> str:
        """Per-pass timing/delta table of every command dispatched."""
        return self.pipeline.report()

    def _apply(self, pass_: Pass) -> PassRecord:
        """Dispatch one pass through the pipeline, updating the store."""
        try:
            self.state, record = self.pipeline.apply(pass_, self.state)
        except PipelineError as exc:
            raise ShellError(str(exc)) from exc
        return record

    # ------------------------------------------------------------------
    # store helpers
    # ------------------------------------------------------------------
    def _need_permutation(self) -> BitPermutation:
        if isinstance(self.function, BitPermutation):
            return self.function
        raise ShellError("no permutation in store (run revgen first)")

    def _need_reversible(self) -> ReversibleCircuit:
        if self.reversible is None:
            raise ShellError("no reversible circuit in store")
        return self.reversible

    def _need_quantum(self) -> QuantumCircuit:
        if self.quantum is None:
            raise ShellError("no quantum circuit in store (run rptm first)")
        return self.quantum

    # ------------------------------------------------------------------
    # commands (also usable as python methods)
    # ------------------------------------------------------------------
    def _cmd_revgen(self, *args: str) -> str:
        options = _parse_options(args)
        for kind in GENERATOR_KINDS:
            if kind in options:
                n = int(options.pop(kind))
                # GeneratePass keeps the options its family accepts
                # and ignores the rest (historical shell tolerance).
                self._apply(GeneratePass(kind, n, **options))
                break
        else:
            flags = "/".join(f"--{kind}" for kind in GENERATOR_KINDS)
            raise ShellError(f"revgen needs one of {flags}")
        kind = type(self.function).__name__
        return f"generated {kind}"

    def revgen(self, **options) -> str:
        return self._cmd_revgen(
            *[f"--{k}={v}" for k, v in options.items()]
        )

    def _cmd_tbs(self, *args: str) -> str:
        options = _parse_options(args)
        self._need_permutation()
        if "bidirectional" in options or "bidir" in options:
            self._apply(SynthesisPass("tbs-bidir"))
        else:
            self._apply(SynthesisPass("tbs"))
        return f"{len(self.reversible)} gates"

    def tbs(self, bidirectional: bool = False) -> str:
        return self._cmd_tbs(*(["--bidirectional"] if bidirectional else []))

    def _cmd_dbs(self, *args: str) -> str:
        self._need_permutation()
        self._apply(SynthesisPass("dbs"))
        return f"{len(self.reversible)} gates"

    def dbs(self) -> str:
        return self._cmd_dbs()

    def _cmd_esopbs(self, *args: str) -> str:
        if not isinstance(self.function, TruthTable):
            raise ShellError("esopbs needs a single-output truth table")
        self._apply(SynthesisPass("esop"))
        return f"{len(self.reversible)} gates on {self.reversible.num_lines} lines"

    def esopbs(self) -> str:
        return self._cmd_esopbs()

    def _cmd_exact(self, *args: str) -> str:
        self._need_permutation()
        self._apply(SynthesisPass("exact"))
        return f"{len(self.reversible)} gates (optimal)"

    def exs(self) -> str:
        return self._cmd_exact()

    def _cmd_revsimp(self, *args: str) -> str:
        self._need_reversible()
        record = self._apply(SimplifyPass())
        return (
            f"{record.before['mct_gates']} -> "
            f"{record.after['mct_gates']} gates"
        )

    def revsimp(self) -> str:
        return self._cmd_revsimp()

    def _cmd_templ(self, *args: str) -> str:
        self._need_reversible()
        record = self._apply(TemplatePass())
        return (
            f"{record.before['mct_gates']} -> "
            f"{record.after['mct_gates']} gates"
        )

    def templ(self) -> str:
        return self._cmd_templ()

    def _cmd_rptm(self, *args: str) -> str:
        options = _parse_options(args)
        relative_phase = "no-relative-phase" not in options
        self._need_reversible()
        self._apply(MapToCliffordTPass(relative_phase=relative_phase))
        return (
            f"{len(self.quantum)} gates, T={self.quantum.t_count()}, "
            f"{self.quantum.num_qubits} qubits"
        )

    def rptm(self, relative_phase: bool = True) -> str:
        return self._cmd_rptm(
            *([] if relative_phase else ["--no-relative-phase"])
        )

    def _cmd_tpar(self, *args: str) -> str:
        self._need_quantum()
        record = self._apply(TparPass(pre_cancel=True, post_cancel=True))
        return (
            f"T: {record.before['t_count']} -> {record.after['t_count']}"
        )

    def tpar(self) -> str:
        return self._cmd_tpar()

    def _cmd_cancel(self, *args: str) -> str:
        self._need_quantum()
        record = self._apply(CancelPass())
        return f"{record.before['gates']} -> {record.after['gates']} gates"

    def cancel(self) -> str:
        return self._cmd_cancel()

    def _cmd_ps(self, *args: str) -> str:
        options = _parse_options(args)
        if "c" in options or "-c" in options:
            circuit = self.quantum
            if circuit is not None:
                return str(circuit_statistics(circuit))
            if self.reversible is not None:
                rev = self.reversible
                return (
                    f"lines: {rev.num_lines}  gates: {len(rev)}  "
                    f"quantum-cost: {rev.quantum_cost()}"
                )
            raise ShellError("nothing in store to print")
        if self.function is not None:
            if isinstance(self.function, BitPermutation):
                return (
                    f"permutation on {self.function.num_bits} bits, "
                    f"{len(self.function.cycles())} nontrivial cycles"
                )
            return (
                f"function on {self.function.num_vars} variables, "
                f"{self.function.count_ones()} ones"
            )
        raise ShellError("nothing in store to print")

    def ps(self, circuit: bool = False) -> str:
        return self._cmd_ps(*(["-c"] if circuit else []))

    def _cmd_simulate(self, *args: str) -> str:
        rev = self._need_reversible()
        perm = rev.permutation()
        if isinstance(self.function, BitPermutation):
            ok = perm == self.function
            return f"matches specification: {ok}"
        return f"permutation head: {perm.image[:8]}"

    def simulate(self) -> str:
        return self._cmd_simulate()

    def _cmd_verify(self, *args: str) -> str:
        """Check the quantum circuit against the reversible circuit.

        The mapped circuit may use extra (clean) ancilla lines; the
        check is that |x>|0> -> e^{i phi}|P(x)>|0> for every data
        input x, with P the reversible circuit's permutation
        (Sec. IX's verification obligation).  The tiered checker
        picks the cheapest sound tier for the width at hand; a check
        it cannot run is reported as an explicit skip, never as a
        pass.
        """
        quantum = self._need_quantum()
        reversible = self._need_reversible()
        verdict = check_mapped_circuit(quantum, reversible)
        if verdict.failed:
            return f"equivalent: False ({verdict.detail})"
        if verdict.skipped:
            return f"unverified: skipped ({verdict.detail})"
        return "equivalent: True"

    def verify(self) -> str:
        return self._cmd_verify()

    def _cmd_backends(self, *args: str) -> str:
        """List the array backends and whether each is usable.

        One line per backend: usable backends come from the
        :mod:`repro.simulator.backends` registry, known builtins whose
        accelerator dependency is missing are listed as unavailable so
        the shell answers "why is numba_parallel not offered?" without
        a Python probe.
        """
        from ..simulator import backends as array_backends

        registered = array_backends.backends()
        lines = []
        for name in registered:
            backend = array_backends.get(name)
            aliases = tuple(getattr(backend, "aliases", ()))
            alias_text = f" (aka {'/'.join(aliases)})" if aliases else ""
            lines.append(f"{name}{alias_text}: {backend.description}")
        for cls in array_backends._BUILTIN_CLASSES:
            if cls.name not in registered:
                alias_text = f" (aka {'/'.join(cls.aliases)})"
                lines.append(
                    f"{cls.name}{alias_text}: unavailable "
                    "(pip install numba)"
                )
        return "\n".join(lines)

    def backends(self) -> str:
        """Python form of the ``backends`` shell command."""
        return self._cmd_backends()

    def _cmd_write(self, format: str, *args: str) -> str:
        """Write the quantum circuit in any registered emit format.

        Backs every ``write_<format>`` shell command (``write_qasm``,
        ``write_qasm3``, ``write_qsharp``, ``write_projectq``,
        ``write_cirq``, ``write_qir``, ...): the format name resolves
        through the :mod:`repro.emit` registry.
        """
        from .. import emit

        if not args:
            raise ShellError(f"write_{format} needs a path")
        circuit = self._need_quantum()
        try:
            text = emit.emit(circuit, format)
        except emit.EmitterError as exc:
            raise ShellError(str(exc)) from exc
        with open(args[0], "w", encoding="utf-8") as handle:
            handle.write(text)
        return f"wrote {len(text.splitlines())} lines to {args[0]}"

    def write(self, format: str, path: str) -> str:
        """Python form of the ``write_<format>`` commands."""
        return self._cmd_write(format, path)

    def write_qasm(self, path: str) -> str:
        return self._cmd_write("qasm", path)

    def _cmd_sim(self, engine: str, *args: str) -> str:
        """Run the quantum circuit on a registered simulation engine.

        Backs every ``sim_<engine>`` shell command
        (``sim_statevector``, ``sim_stabilizer``,
        ``sim_density_matrix``, ``sim_monte_carlo``, alias forms like
        ``sim_dm``, and any engine registered at runtime): the engine
        name resolves through the :mod:`repro.engines` registry.
        Options: ``--shots N`` (default 1024), ``--noise MODEL`` (a
        preset like ``qe5`` or a ``p1=...`` rate list), ``--seed N``.
        A circuit without measurements is run on a terminal
        measure-all copy.
        """
        from .. import engines

        options = _parse_options(args)
        try:
            shots = int(options.pop("shots", "1024"))
            seed_text = options.pop("seed", None)
            seed = int(seed_text) if seed_text is not None else None
        except ValueError as exc:
            raise ShellError(f"sim_{engine}: {exc}") from exc
        noise = options.pop("noise", None)
        if options:
            raise ShellError(
                f"sim_{engine}: unknown options "
                f"{', '.join(sorted(options))}"
            )
        circuit = self._need_quantum()
        if not circuit.has_measurements():
            circuit = circuit.copy()
            circuit.measure_all()
        try:
            result = engines.run(
                engine, circuit, shots=shots, noise=noise, seed=seed
            )
        except (engines.EngineError, RuntimeError) as exc:
            # EngineError for registry/option problems; RuntimeError
            # covers backend refusals (e.g. a T gate reaching the
            # Clifford-only stabilizer engine).
            raise ShellError(f"sim_{engine}: {exc}") from exc
        counts = result.counts_by_bitstring()
        top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
        total = sum(counts.values()) or 1
        histogram = ", ".join(
            f"|{bits}> {count / total:.3f}" for bits, count in top
        )
        if len(counts) > len(top):
            histogram += f", ... ({len(counts)} outcomes)"
        return f"{engines.get(engine).name} ({shots} shots): {histogram}"

    def sim(
        self,
        engine: str = "statevector",
        shots: int = 1024,
        noise: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> str:
        """Python form of the ``sim_<engine>`` commands."""
        args = [f"--shots={shots}"]
        if noise is not None:
            args.append(f"--noise={noise}")
        if seed is not None:
            args.append(f"--seed={seed}")
        return self._cmd_sim(engine, *args)


def _parse_options(args) -> Dict[str, str]:
    """Parse ``--key value`` / ``--key=value`` / ``-c`` style options."""
    options: Dict[str, str] = {}
    tokens = list(args)
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.startswith("--"):
            body = token[2:]
            if "=" in body:
                key, value = body.split("=", 1)
                options[key] = value
            elif index + 1 < len(tokens) and not tokens[index + 1].startswith("-"):
                options[body] = tokens[index + 1]
                index += 1
            else:
                options[body] = "1"
        elif token.startswith("-"):
            options[token[1:]] = "1"
        else:
            options[token] = "1"
        index += 1
    return options


# synthesis handles for PermutationOracle(synth=...), paper-style
tbs = transformation_based_synthesis
dbs = decomposition_based_synthesis

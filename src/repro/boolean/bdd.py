"""Reduced ordered binary decision diagrams (ROBDDs).

The symbolic function representation cited throughout Sec. V for
scaling synthesis beyond explicit truth tables ([45], [46], [51]).
This is a classical shared-node BDD package: a unique table keyed by
``(var, low, high)``, an ITE-based apply with memoization, and the
queries the BDD-based synthesis pass needs (node listing in topological
order, cofactors, satisfiability counting).

Terminals are the integers ``0`` and ``1``; internal nodes are indices
into the package's node array.  Variable 0 is the *top* of the order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .truth_table import TruthTable

#: Terminal node ids.
ZERO = 0
ONE = 1


@dataclass(frozen=True)
class BddNode:
    """Internal decision node: if var then high else low."""

    var: int
    low: int
    high: int


class Bdd:
    """A shared ROBDD manager over ``num_vars`` ordered variables."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        # nodes[0], nodes[1] are placeholders for terminals
        self.nodes: List[Optional[BddNode]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def make_node(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node (var, low, high), applying reduction."""
        if low == high:
            return low
        key = (var, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self.nodes)
            self.nodes.append(BddNode(var, low, high))
            self._unique[key] = node_id
        return node_id

    def variable(self, var: int) -> int:
        """The function f = x_var."""
        if not 0 <= var < self.num_vars:
            raise ValueError("variable out of range")
        return self.make_node(var, ZERO, ONE)

    def is_terminal(self, node: int) -> bool:
        return node in (ZERO, ONE)

    def node(self, node_id: int) -> BddNode:
        data = self.nodes[node_id]
        if data is None:
            raise ValueError("terminal node has no structure")
        return data

    def top_var(self, node: int) -> int:
        """Variable index of a node; terminals sort below all variables."""
        if self.is_terminal(node):
            return self.num_vars
        return self.node(node).var

    def cofactors(self, node: int, var: int) -> Tuple[int, int]:
        """(low, high) cofactors with respect to ``var``."""
        if self.is_terminal(node) or self.node(node).var != var:
            return node, node
        data = self.node(node)
        return data.low, data.high

    # ------------------------------------------------------------------
    # boolean operations via ITE
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f ? g : h."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = min(self.top_var(f), self.top_var(g), self.top_var(h))
        f0, f1 = self.cofactors(f, var)
        g0, g1 = self.cofactors(g, var)
        h0, h1 = self.cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self.make_node(var, low, high)
        self._ite_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def from_truth_table(self, table: TruthTable) -> int:
        """Build the BDD of an explicit truth table (Shannon recursion)."""
        if table.num_vars != self.num_vars:
            raise ValueError("variable count mismatch")

        memo: Dict[Tuple[int, int], int] = {}

        def build(var: int, bits: int) -> int:
            remaining = self.num_vars - var
            if remaining == 0:
                return ONE if bits & 1 else ZERO
            key = (var, bits)
            cached = memo.get(key)
            if cached is not None:
                return cached
            half = 1 << (remaining - 1)
            # variable `var` is the LSB of the input index; splitting on
            # the *top* variable of the order means splitting the table
            # on its most significant remaining variable, so recurse
            # with var+... Actually: split on the highest variable so
            # that 'var' ordering 0..n-1 maps to index bits n-1..0.
            low_bits = 0
            high_bits = 0
            for x in range(half):
                if (bits >> x) & 1:
                    low_bits |= 1 << x
                if (bits >> (x + half)) & 1:
                    high_bits |= 1 << x
            low = build(var + 1, low_bits)
            high = build(var + 1, high_bits)
            result = self.make_node(var, low, high)
            memo[key] = result
            return result

        # note: with this construction variable 0 (top) corresponds to
        # input-index bit n-1.  Re-map so that BDD var i == table var i:
        remapped = table.permute_vars(list(reversed(range(self.num_vars))))
        return build(0, remapped.bits)

    def to_truth_table(self, node: int) -> TruthTable:
        """Expand a BDD back into an explicit truth table."""
        table = TruthTable(self.num_vars)
        for x in range(1 << self.num_vars):
            if self.evaluate(node, x):
                table.bits |= 1 << x
        return table

    def evaluate(self, node: int, x: int) -> int:
        """Evaluate at input ``x`` (variable i = bit i of x)."""
        while not self.is_terminal(node):
            data = self.node(node)
            node = data.high if (x >> data.var) & 1 else data.low
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable_nodes(self, roots: Iterable[int]) -> List[int]:
        """Internal nodes reachable from ``roots`` in topological order
        (children before parents)."""
        seen = set()
        order: List[int] = []

        def visit(node: int) -> None:
            if node in seen or self.is_terminal(node):
                return
            seen.add(node)
            data = self.node(node)
            visit(data.low)
            visit(data.high)
            order.append(node)

        for root in roots:
            visit(root)
        return order

    def count_nodes(self, roots: Iterable[int]) -> int:
        return len(self.reachable_nodes(roots))

    def count_satisfying(self, node: int) -> int:
        """Number of satisfying assignments over all num_vars inputs."""
        memo: Dict[int, int] = {}

        def count(n: int, var: int) -> int:
            # number of solutions over variables var..num_vars-1
            if n == ZERO:
                return 0
            level = self.top_var(n)
            if n == ONE:
                return 1 << (self.num_vars - var)
            key = n
            if key in memo:
                cached_level = self.node(n).var
                return memo[key] << (cached_level - var)
            data = self.node(n)
            low = count(data.low, level + 1)
            high = count(data.high, level + 1)
            memo[key] = low + high
            return (low + high) << (level - var)

        return count(node, 0)

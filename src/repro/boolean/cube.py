"""Cubes — product terms over Boolean variables.

A :class:`Cube` is a conjunction of literals, stored as two bitmasks:
``mask`` marks which variables appear, ``polarity`` their sign (bit set
= positive literal).  Cubes are the terms of ESOP expressions
(exclusive sums of products) which drive ESOP-based reversible
synthesis (Sec. V) and PhaseOracle compilation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from .truth_table import TruthTable


class Cube:
    """A product term: AND of literals over up to ``num_vars`` variables."""

    __slots__ = ("mask", "polarity")

    def __init__(self, mask: int = 0, polarity: int = 0):
        if polarity & ~mask:
            raise ValueError("polarity bit set for a variable not in mask")
        self.mask = mask
        self.polarity = polarity

    @classmethod
    def from_literals(cls, literals: Iterable[Tuple[int, bool]]) -> "Cube":
        """Build from (variable, positive?) pairs."""
        mask = polarity = 0
        for var, positive in literals:
            bit = 1 << var
            if mask & bit:
                raise ValueError(f"variable {var} appears twice")
            mask |= bit
            if positive:
                polarity |= bit
        return cls(mask, polarity)

    @classmethod
    def tautology(cls) -> "Cube":
        """The empty cube (constant 1)."""
        return cls(0, 0)

    @classmethod
    def minterm(cls, num_vars: int, x: int) -> "Cube":
        """The cube selecting exactly input ``x``."""
        mask = (1 << num_vars) - 1
        return cls(mask, x & mask)

    # ------------------------------------------------------------------
    def literals(self) -> Iterator[Tuple[int, bool]]:
        mask = self.mask
        var = 0
        while mask:
            if mask & 1:
                yield var, bool((self.polarity >> var) & 1)
            mask >>= 1
            var += 1

    def num_literals(self) -> int:
        return bin(self.mask).count("1")

    def positive_vars(self) -> List[int]:
        return [v for v, pos in self.literals() if pos]

    def negative_vars(self) -> List[int]:
        return [v for v, pos in self.literals() if not pos]

    def evaluate(self, x: int) -> int:
        """1 if input ``x`` satisfies all literals."""
        return int((x & self.mask) == self.polarity)

    def to_truth_table(self, num_vars: int) -> TruthTable:
        table = TruthTable(num_vars)
        for x in range(1 << num_vars):
            if self.evaluate(x):
                table.bits |= 1 << x
        return table

    def distance(self, other: "Cube") -> int:
        """Number of positions in which two cubes differ.

        A position differs if the variable appears in exactly one cube,
        or appears in both with opposite polarity.  Distance-1 pairs can
        be merged by EXOR-link operations (exorcism).
        """
        diff_mask = self.mask ^ other.mask
        shared = self.mask & other.mask
        diff_pol = (self.polarity ^ other.polarity) & shared
        return bin(diff_mask).count("1") + bin(diff_pol).count("1")

    def restrict(self, var: int, value: bool) -> Optional["Cube"]:
        """Cofactor the cube by ``x_var = value``.

        Returns None if the cube requires the opposite value (i.e. the
        restricted cube is constant 0); otherwise the cube without the
        variable.
        """
        bit = 1 << var
        if not self.mask & bit:
            return self
        needs = bool(self.polarity & bit)
        if needs != value:
            return None
        return Cube(self.mask & ~bit, self.polarity & ~bit)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cube)
            and self.mask == other.mask
            and self.polarity == other.polarity
        )

    def __hash__(self) -> int:
        return hash((self.mask, self.polarity))

    def __str__(self) -> str:
        if not self.mask:
            return "1"
        parts = []
        for var, positive in self.literals():
            parts.append(f"x{var}" if positive else f"~x{var}")
        return "&".join(parts)

    def __repr__(self) -> str:
        return f"Cube({self})"


def esop_to_truth_table(cubes: Iterable[Cube], num_vars: int) -> TruthTable:
    """XOR of the cubes' characteristic functions."""
    table = TruthTable(num_vars)
    for cube in cubes:
        table = table ^ cube.to_truth_table(num_vars)
    return table


def esop_evaluate(cubes: Iterable[Cube], x: int) -> int:
    """Evaluate an ESOP (XOR of cubes) on the input assignment ``x``."""
    value = 0
    for cube in cubes:
        value ^= cube.evaluate(x)
    return value

"""XOR-AND logic networks (XAGs) and k-LUT mapping.

Hierarchical reversible synthesis (Sec. V: BDD-, AIG-, XMG- and
LUT-based methods [45], [55], [63], [65]) starts from a multi-level
logic network of the function to compile.  This module provides:

* :class:`LogicNetwork` — a DAG of AND/XOR nodes over complemented
  edges (an XAG; plain AIGs are the XOR-free special case);
* construction from ESOP covers or truth tables;
* bit-parallel simulation back to truth tables;
* :func:`lut_map` — cut-based k-LUT mapping (exhaustive bounded cut
  enumeration + greedy area-oriented cover selection), producing the
  :class:`LutNetwork` consumed by LUT-based reversible synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .cube import Cube
from .esop import minimize_esop
from .truth_table import TruthTable

#: A signal is a node index with a complement flag encoded in bit 0.
Signal = int


def make_signal(node: int, complemented: bool = False) -> Signal:
    return (node << 1) | int(complemented)


def signal_node(signal: Signal) -> int:
    return signal >> 1


def signal_complemented(signal: Signal) -> bool:
    return bool(signal & 1)


@dataclass(frozen=True)
class NetworkNode:
    """An internal gate: kind in {"and", "xor"}, two fanin signals."""

    kind: str
    fanin: Tuple[Signal, Signal]


class LogicNetwork:
    """An XAG: primary inputs, AND/XOR nodes, complemented edges.

    Node 0 is the constant-0 node; primary inputs follow; internal
    nodes are appended in topological order.
    """

    def __init__(self, num_inputs: int):
        self.num_inputs = num_inputs
        self.nodes: List[Optional[NetworkNode]] = [None] * (1 + num_inputs)
        self.outputs: List[Signal] = []
        self._strash: Dict[Tuple[str, Signal, Signal], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def constant(self, value: bool = False) -> Signal:
        return make_signal(0, value)

    def input_signal(self, index: int) -> Signal:
        if not 0 <= index < self.num_inputs:
            raise ValueError("input index out of range")
        return make_signal(1 + index)

    def _create(self, kind: str, a: Signal, b: Signal) -> Signal:
        if a > b:
            a, b = b, a
        key = (kind, a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self.nodes)
            self.nodes.append(NetworkNode(kind, (a, b)))
            self._strash[key] = node
        return make_signal(node)

    def create_and(self, a: Signal, b: Signal) -> Signal:
        # constant propagation
        if a == self.constant(False) or b == self.constant(False):
            return self.constant(False)
        if a == self.constant(True):
            return b
        if b == self.constant(True):
            return a
        if a == b:
            return a
        if signal_node(a) == signal_node(b):  # a & ~a
            return self.constant(False)
        return self._create("and", a, b)

    def create_or(self, a: Signal, b: Signal) -> Signal:
        return self.create_not(self.create_and(self.create_not(a), self.create_not(b)))

    def create_xor(self, a: Signal, b: Signal) -> Signal:
        if a == self.constant(False):
            return b
        if b == self.constant(False):
            return a
        if a == self.constant(True):
            return self.create_not(b)
        if b == self.constant(True):
            return self.create_not(a)
        if a == b:
            return self.constant(False)
        if signal_node(a) == signal_node(b):
            return self.constant(True)
        # normalize: push complements out (x ^ ~y = ~(x ^ y))
        complement = signal_complemented(a) ^ signal_complemented(b)
        a = make_signal(signal_node(a))
        b = make_signal(signal_node(b))
        result = self._create("xor", a, b)
        return result ^ int(complement)

    @staticmethod
    def create_not(a: Signal) -> Signal:
        return a ^ 1

    def add_output(self, signal: Signal) -> int:
        self.outputs.append(signal)
        return len(self.outputs) - 1

    # ------------------------------------------------------------------
    @classmethod
    def from_esop(cls, cubes: Sequence[Cube], num_inputs: int) -> "LogicNetwork":
        """XOR-chain of AND-trees — the natural XAG of an ESOP."""
        network = cls(num_inputs)
        acc = network.constant(False)
        for cube in cubes:
            term = network.constant(True)
            for var, positive in cube.literals():
                literal = network.input_signal(var)
                if not positive:
                    literal = network.create_not(literal)
                term = network.create_and(term, literal)
            acc = network.create_xor(acc, term)
        network.add_output(acc)
        return network

    @classmethod
    def from_truth_table(cls, table: TruthTable) -> "LogicNetwork":
        """Network via a minimized ESOP cover of the table."""
        return cls.from_esop(minimize_esop(table), table.num_vars)

    @classmethod
    def from_truth_tables(cls, tables: Sequence[TruthTable]) -> "LogicNetwork":
        """Multi-output network sharing structure across outputs."""
        if not tables:
            raise ValueError("need at least one output")
        network = cls(tables[0].num_vars)
        for table in tables:
            acc = network.constant(False)
            for cube in minimize_esop(table):
                term = network.constant(True)
                for var, positive in cube.literals():
                    literal = network.input_signal(var)
                    if not positive:
                        literal = network.create_not(literal)
                    term = network.create_and(term, literal)
                acc = network.create_xor(acc, term)
            network.add_output(acc)
        return network

    # ------------------------------------------------------------------
    # inspection / simulation
    # ------------------------------------------------------------------
    def num_gates(self) -> int:
        return len(self.nodes) - 1 - self.num_inputs

    def gate_nodes(self) -> List[int]:
        return list(range(1 + self.num_inputs, len(self.nodes)))

    def is_input(self, node: int) -> bool:
        return 1 <= node <= self.num_inputs

    def simulate(self) -> List[TruthTable]:
        """Truth tables of all outputs (bit-parallel over all inputs)."""
        values = self.simulate_nodes()
        out: List[TruthTable] = []
        for signal in self.outputs:
            table = values[signal_node(signal)]
            out.append(~table if signal_complemented(signal) else table)
        return out

    def simulate_nodes(self) -> List[TruthTable]:
        """Truth table of every node (by node index)."""
        n = self.num_inputs
        values: List[TruthTable] = [TruthTable(n)]  # constant 0
        for i in range(n):
            values.append(TruthTable.projection(n, i))
        for node_id in self.gate_nodes():
            node = self.nodes[node_id]
            a = values[signal_node(node.fanin[0])]
            if signal_complemented(node.fanin[0]):
                a = ~a
            b = values[signal_node(node.fanin[1])]
            if signal_complemented(node.fanin[1]):
                b = ~b
            values.append(a & b if node.kind == "and" else a ^ b)
        return values

    def fanout_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for node_id in self.gate_nodes():
            for fanin in self.nodes[node_id].fanin:
                counts[signal_node(fanin)] = counts.get(signal_node(fanin), 0) + 1
        for signal in self.outputs:
            counts[signal_node(signal)] = counts.get(signal_node(signal), 0) + 1
        return counts

    def depth(self) -> int:
        levels: Dict[int, int] = {0: 0}
        for i in range(1, 1 + self.num_inputs):
            levels[i] = 0
        best = 0
        for node_id in self.gate_nodes():
            node = self.nodes[node_id]
            level = 1 + max(
                levels[signal_node(node.fanin[0])],
                levels[signal_node(node.fanin[1])],
            )
            levels[node_id] = level
            best = max(best, level)
        return best


# ----------------------------------------------------------------------
# k-LUT mapping
# ----------------------------------------------------------------------
@dataclass
class Lut:
    """One mapped LUT: a function of its leaf nodes."""

    node: int                      # network node this LUT computes
    leaves: Tuple[int, ...]        # leaf node ids (inputs of the LUT)
    table: TruthTable              # function over the leaves (var i = leaf i)


@dataclass
class LutNetwork:
    """Result of k-LUT mapping: LUTs in topological order."""

    num_inputs: int
    luts: List[Lut]
    outputs: List[Tuple[int, bool]]  # (node, complemented) per output

    def num_luts(self) -> int:
        return len(self.luts)

    def simulate(self) -> List[TruthTable]:
        """Verify the mapping by re-simulating over primary inputs."""
        n = self.num_inputs
        values: Dict[int, TruthTable] = {0: TruthTable(n)}
        for i in range(n):
            values[1 + i] = TruthTable.projection(n, i)
        for lut in self.luts:
            result = TruthTable(n)
            for x in range(1 << n):
                local = 0
                for j, leaf in enumerate(lut.leaves):
                    if values[leaf](x):
                        local |= 1 << j
                if lut.table(local):
                    result.bits |= 1 << x
            values[lut.node] = result
        out = []
        for node, complemented in self.outputs:
            table = values[node]
            out.append(~table if complemented else table)
        return out


def _enumerate_cuts(
    network: LogicNetwork, k: int, cut_limit: int = 12
) -> Dict[int, List[FrozenSet[int]]]:
    """Bounded cut enumeration: up to ``cut_limit`` cuts of size <= k
    per node, always including the trivial cut {node}."""
    cuts: Dict[int, List[FrozenSet[int]]] = {0: [frozenset()]}
    for i in range(1, 1 + network.num_inputs):
        cuts[i] = [frozenset({i})]
    for node_id in network.gate_nodes():
        node = network.nodes[node_id]
        a = signal_node(node.fanin[0])
        b = signal_node(node.fanin[1])
        merged: List[FrozenSet[int]] = []
        seen = set()
        for cut_a in cuts[a]:
            for cut_b in cuts[b]:
                cut = cut_a | cut_b
                if len(cut) > k or cut in seen:
                    continue
                seen.add(cut)
                merged.append(cut)
        merged.sort(key=len)
        merged = merged[: cut_limit - 1]
        merged.append(frozenset({node_id}))
        cuts[node_id] = merged
    return cuts


def _cut_function(
    network: LogicNetwork, node: int, leaves: Tuple[int, ...]
) -> TruthTable:
    """Function of ``node`` in terms of the cut leaves."""
    k = len(leaves)
    values: Dict[int, TruthTable] = {0: TruthTable(k)}
    for j, leaf in enumerate(leaves):
        values[leaf] = TruthTable.projection(k, j)

    def compute(n: int) -> TruthTable:
        if n in values:
            return values[n]
        data = network.nodes[n]
        if data is None:
            raise ValueError(f"cut does not cover input node {n}")
        a = compute(signal_node(data.fanin[0]))
        if signal_complemented(data.fanin[0]):
            a = ~a
        b = compute(signal_node(data.fanin[1]))
        if signal_complemented(data.fanin[1]):
            b = ~b
        result = a & b if data.kind == "and" else a ^ b
        values[n] = result
        return result

    return compute(node)


def lut_map(network: LogicNetwork, k: int = 4) -> LutNetwork:
    """Map an XAG into k-LUTs.

    Strategy: enumerate bounded cuts, then cover the network from the
    outputs backwards, choosing for each required node the cut that
    minimizes (new nodes required, cut size).  This is the classical
    area-oriented greedy cover; optimality is not required, the tests
    verify functional correctness and the k-feasibility invariant.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    cuts = _enumerate_cuts(network, k)
    required = [
        signal_node(s)
        for s in network.outputs
        if not network.is_input(signal_node(s)) and signal_node(s) != 0
    ]
    chosen: Dict[int, FrozenSet[int]] = {}
    stack = list(required)
    while stack:
        node = stack.pop()
        if node in chosen or network.is_input(node) or node == 0:
            continue
        best = None
        best_cost = None
        for cut in cuts[node]:
            if cut == frozenset({node}) and network.nodes[node] is not None:
                # trivial cut of an internal node is not a valid cover
                # choice unless no other exists (it would be circular)
                continue
            new_nodes = sum(
                1
                for leaf in cut
                if leaf not in chosen
                and not network.is_input(leaf)
                and leaf != 0
            )
            cost = (new_nodes, len(cut))
            if best_cost is None or cost < best_cost:
                best, best_cost = cut, cost
        if best is None:
            # fall back: express through fanins directly
            node_data = network.nodes[node]
            best = frozenset(
                signal_node(f) for f in node_data.fanin
            )
        chosen[node] = best
        for leaf in best:
            if leaf not in chosen and not network.is_input(leaf) and leaf != 0:
                stack.append(leaf)

    # topological order of chosen LUTs
    order: List[int] = []
    visited = set()

    def visit(node: int) -> None:
        if node in visited or network.is_input(node) or node == 0:
            return
        visited.add(node)
        for leaf in chosen[node]:
            visit(leaf)
        order.append(node)

    for node in required:
        visit(node)

    luts = []
    for node in order:
        leaves = tuple(sorted(chosen[node]))
        table = _cut_function(network, node, leaves)
        luts.append(Lut(node, leaves, table))

    outputs = []
    for signal in network.outputs:
        node = signal_node(signal)
        outputs.append((node, signal_complemented(signal)))
    return LutNetwork(network.num_inputs, luts, outputs)

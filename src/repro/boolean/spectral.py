"""Walsh–Hadamard spectral analysis of Boolean functions.

Bent functions — the heart of the hidden shift problem (Sec. VI.A) —
are exactly the functions with a perfectly flat Walsh spectrum:
``|W_f(w)| = 2^{n/2}`` for all ``w``.  The *dual* bent function f~ is
read off the spectrum signs: ``W_f(w) = 2^{n/2} (-1)^{f~(w)}``.

The transform is computed with the fast Walsh–Hadamard butterfly in
O(n 2^n) using numpy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .truth_table import TruthTable


def walsh_spectrum(table: TruthTable) -> np.ndarray:
    """Walsh spectrum ``W_f(w) = sum_x (-1)^{f(x) + w.x}`` for all w."""
    signs = np.array(
        [1 - 2 * table(x) for x in range(table.size)], dtype=np.int64
    )
    return fwht(signs)


def fwht(vector: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh–Hadamard transform (unnormalized)."""
    out = vector.astype(np.int64).copy()
    size = out.size
    h = 1
    while h < size:
        for start in range(0, size, h * 2):
            a = out[start:start + h].copy()
            b = out[start + h:start + 2 * h].copy()
            out[start:start + h] = a + b
            out[start + h:start + 2 * h] = a - b
        h *= 2
    return out


def is_bent(table: TruthTable) -> bool:
    """True iff the function has a flat spectrum (requires even n)."""
    n = table.num_vars
    if n % 2 != 0 or n == 0:
        return False
    spectrum = walsh_spectrum(table)
    flat = 1 << (n // 2)
    return bool(np.all(np.abs(spectrum) == flat))


def dual_bent(table: TruthTable) -> TruthTable:
    """Dual bent function f~ with ``W_f(w) = 2^{n/2} (-1)^{f~(w)}``."""
    if not is_bent(table):
        raise ValueError("dual is only defined for bent functions")
    spectrum = walsh_spectrum(table)
    bits = 0
    for w, value in enumerate(spectrum):
        if value < 0:
            bits |= 1 << w
    return TruthTable(table.num_vars, bits)


def nonlinearity(table: TruthTable) -> int:
    """Hamming distance to the closest affine function."""
    spectrum = walsh_spectrum(table)
    return (table.size - int(np.max(np.abs(spectrum)))) // 2


def correlation(f: TruthTable, g: TruthTable) -> np.ndarray:
    """Cross-correlation ``C(s) = sum_x (-1)^{f(x) + g(x ^ s)}``.

    For a bent pair ``g(x) = f(x ^ s0)`` the correlation is
    ``+-2^n`` exactly at ``s = s0`` — the classical counterpart of the
    quantum hidden-shift algorithm's interference pattern.
    """
    if f.num_vars != g.num_vars:
        raise ValueError("functions over different variable counts")
    sf = np.array([1 - 2 * f(x) for x in range(f.size)], dtype=np.int64)
    sg = np.array([1 - 2 * g(x) for x in range(g.size)], dtype=np.int64)
    # convolution over (Z_2)^n diagonalizes under WHT
    product = fwht(sf) * fwht(sg)
    return fwht(product) // f.size


def find_shift_classically(f: TruthTable, g: TruthTable) -> Optional[int]:
    """Recover s with g(x) = f(x ^ s) by exhaustive correlation.

    This is the (exponential-time) classical baseline the quantum
    algorithm beats; used by tests and benches as ground truth.
    """
    corr = correlation(f, g)
    peak = int(np.argmax(np.abs(corr)))
    if abs(int(corr[peak])) == f.size:
        # confirm it is a true shift
        for x in range(f.size):
            if g(x) != f(x ^ peak):
                return None
        return peak
    return None


def linear_structure(table: TruthTable) -> List[int]:
    """Vectors a with f(x ^ a) + f(x) constant (bent => only a = 0)."""
    out = []
    for a in range(table.size):
        first = table(0) ^ table(a)
        if all(table(x) ^ table(x ^ a) == first for x in range(table.size)):
            out.append(a)
    return out


def autocorrelation(table: TruthTable) -> np.ndarray:
    """Autocorrelation spectrum ``r(a) = sum_x (-1)^{f(x) + f(x ^ a)}``.

    The dual characterization of bentness: f is bent iff ``r(a) = 0``
    for every ``a != 0`` (perfect nonlinearity) — the property that
    makes the hidden shift measurable in a single query.
    """
    signs = np.array(
        [1 - 2 * table(x) for x in range(table.size)], dtype=np.int64
    )
    spectrum = fwht(signs)
    return fwht(spectrum * spectrum) // table.size


def is_perfectly_nonlinear(table: TruthTable) -> bool:
    """True iff the autocorrelation vanishes off the origin (= bent)."""
    r = autocorrelation(table)
    return bool(r[0] == table.size and np.all(r[1:] == 0))

"""Permutations over Boolean bit-vectors.

A :class:`BitPermutation` is a bijection on ``{0, ..., 2^n - 1}`` — the
specification consumed by ``PermutationOracle`` and by the reversible
synthesis algorithms of Sec. V (a reversible function *is* such a
permutation).  The running example of the paper uses
``pi = [0, 2, 3, 5, 7, 1, 4, 6]`` on 3 bits.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .truth_table import MultiTruthTable, TruthTable


class BitPermutation:
    """Bijection on n-bit values, stored as the image list."""

    def __init__(self, image: Sequence[int]):
        image = list(image)
        size = len(image)
        num_bits = size.bit_length() - 1
        if 1 << num_bits != size:
            raise ValueError("permutation length must be a power of two")
        if sorted(image) != list(range(size)):
            raise ValueError("not a permutation of 0..2^n-1")
        self.image = image
        self.num_bits = num_bits

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_bits: int) -> "BitPermutation":
        return cls(list(range(1 << num_bits)))

    @classmethod
    def random(cls, num_bits: int, seed: Optional[int] = None) -> "BitPermutation":
        rng = random.Random(seed)
        image = list(range(1 << num_bits))
        rng.shuffle(image)
        return cls(image)

    @classmethod
    def from_truth_tables(cls, tables: MultiTruthTable) -> "BitPermutation":
        if not tables.is_reversible():
            raise ValueError("multi-output function is not reversible")
        return cls(tables.image())

    @classmethod
    def hidden_weighted_bit(cls, num_bits: int) -> "BitPermutation":
        """The hwb function of the Eq. (5) pipeline.

        hwb(x) rotates the bits of x by its Hamming weight:
        output bit i = input bit (i + weight(x)) mod n.  This is the
        standard reversible benchmark function (``revgen --hwb``).
        """
        n = num_bits
        image = []
        for x in range(1 << n):
            weight = bin(x).count("1")
            y = 0
            for i in range(n):
                if (x >> ((i + weight) % n)) & 1:
                    y |= 1 << i
            image.append(y)
        return cls(image)

    # ------------------------------------------------------------------
    def __call__(self, x: int) -> int:
        return self.image[x]

    def __len__(self) -> int:
        return len(self.image)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BitPermutation) and self.image == other.image
        )

    def __hash__(self) -> int:
        return hash(tuple(self.image))

    def inverse(self) -> "BitPermutation":
        inv = [0] * len(self.image)
        for x, y in enumerate(self.image):
            inv[y] = x
        return BitPermutation(inv)

    def compose(self, other: "BitPermutation") -> "BitPermutation":
        """(self . other)(x) = self(other(x))."""
        if self.num_bits != other.num_bits:
            raise ValueError("permutation width mismatch")
        return BitPermutation([self(other(x)) for x in range(len(self.image))])

    def is_identity(self) -> bool:
        return all(self(x) == x for x in range(len(self.image)))

    def cycles(self) -> List[List[int]]:
        """Disjoint cycles (length > 1 only)."""
        seen = set()
        out: List[List[int]] = []
        for start in range(len(self.image)):
            if start in seen or self(start) == start:
                continue
            cycle = [start]
            seen.add(start)
            current = self(start)
            while current != start:
                cycle.append(current)
                seen.add(current)
                current = self(current)
            out.append(cycle)
        return out

    def parity(self) -> int:
        """0 for even permutations, 1 for odd."""
        return sum(len(c) - 1 for c in self.cycles()) % 2

    def output_table(self, bit: int) -> TruthTable:
        """Truth table of output bit ``bit``."""
        table = TruthTable(self.num_bits)
        for x, y in enumerate(self.image):
            if (y >> bit) & 1:
                table.bits |= 1 << x
        return table

    def to_truth_tables(self) -> MultiTruthTable:
        return MultiTruthTable(
            [self.output_table(bit) for bit in range(self.num_bits)]
        )

    def hamming_complexity(self) -> int:
        """Total Hamming distance sum(d(x, pi(x))) — a synthesis-cost
        heuristic used by transformation-based methods."""
        return sum(
            bin(x ^ y).count("1") for x, y in enumerate(self.image)
        )

    def __repr__(self) -> str:
        return f"BitPermutation({self.image})"

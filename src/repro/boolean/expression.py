"""Python predicates as Boolean function specifications.

The paper's ``PhaseOracle(f)`` statement takes a plain Python function
(Fig. 4: ``lambda a, b, c, d: (a and b) ^ (c and d)``), converts its
body into a Boolean expression, and hands it to RevKit.  This module
implements that conversion: the predicate's AST is compiled into a
:class:`TruthTable` by symbolic evaluation over truth tables, so the
supported fragment (``and``, ``or``, ``not``, ``^``, ``&``, ``|``,
``~``, ``==``, ``!=``, constants) is translated exactly; anything
outside the fragment falls back to exhaustive tabulation.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, List, Optional

from .truth_table import TruthTable


class ExpressionError(ValueError):
    """Raised when a predicate cannot be converted."""


def function_arity(func: Callable) -> int:
    """Number of positional parameters of the predicate."""
    signature = inspect.signature(func)
    params = [
        p
        for p in signature.parameters.values()
        if p.kind
        in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(params)


def predicate_to_truth_table(
    func: Callable, num_vars: Optional[int] = None
) -> TruthTable:
    """Compile a Python predicate into a truth table.

    Tries symbolic AST evaluation first (exact translation of the
    Boolean fragment); falls back to brute-force tabulation for
    predicates using arithmetic or other constructs.
    """
    if num_vars is None:
        num_vars = function_arity(func)
    try:
        return _symbolic(func, num_vars)
    except ExpressionError:
        return TruthTable.from_function(num_vars, func)


def _symbolic(func: Callable, num_vars: int) -> TruthTable:
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError) as exc:
        raise ExpressionError("source unavailable") from exc
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        # e.g. a lambda inside a call expression; try to slice it out
        raise ExpressionError("cannot parse source") from exc
    node = _find_function_node(tree)
    if node is None:
        raise ExpressionError("no function definition found")
    arg_names = _argument_names(node)
    if len(arg_names) != num_vars:
        raise ExpressionError("arity mismatch")
    body = _function_body(node)
    env = {
        name: TruthTable.projection(num_vars, i)
        for i, name in enumerate(arg_names)
    }
    return _eval(body, env, num_vars)


def _find_function_node(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return node
    return None


def _argument_names(node) -> List[str]:
    args = node.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        raise ExpressionError("only plain positional parameters supported")
    return [a.arg for a in args.args]


def _function_body(node):
    if isinstance(node, ast.Lambda):
        return node.body
    statements = [
        s for s in node.body if not isinstance(s, (ast.Expr,))
        or not isinstance(getattr(s, "value", None), ast.Constant)
    ]
    if len(statements) != 1 or not isinstance(statements[0], ast.Return):
        raise ExpressionError("predicate body must be a single return")
    if statements[0].value is None:
        raise ExpressionError("predicate returns nothing")
    return statements[0].value


def _eval(node, env, num_vars: int) -> TruthTable:
    if isinstance(node, ast.Name):
        if node.id not in env:
            raise ExpressionError(f"unknown name {node.id!r}")
        return env[node.id]
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or node.value in (0, 1):
            return TruthTable.constant(num_vars, bool(node.value))
        raise ExpressionError(f"unsupported constant {node.value!r}")
    if isinstance(node, ast.BoolOp):
        values = [_eval(v, env, num_vars) for v in node.values]
        result = values[0]
        for value in values[1:]:
            result = (
                result & value
                if isinstance(node.op, ast.And)
                else result | value
            )
        return result
    if isinstance(node, ast.UnaryOp):
        operand = _eval(node.operand, env, num_vars)
        if isinstance(node.op, (ast.Not, ast.Invert)):
            return ~operand
        raise ExpressionError("unsupported unary operator")
    if isinstance(node, ast.BinOp):
        left = _eval(node.left, env, num_vars)
        right = _eval(node.right, env, num_vars)
        if isinstance(node.op, ast.BitXor):
            return left ^ right
        if isinstance(node.op, ast.BitAnd):
            return left & right
        if isinstance(node.op, ast.BitOr):
            return left | right
        raise ExpressionError("unsupported binary operator")
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            raise ExpressionError("chained comparisons unsupported")
        left = _eval(node.left, env, num_vars)
        right = _eval(node.comparators[0], env, num_vars)
        if isinstance(node.ops[0], ast.Eq):
            return ~(left ^ right)
        if isinstance(node.ops[0], ast.NotEq):
            return left ^ right
        raise ExpressionError("unsupported comparison")
    if isinstance(node, ast.IfExp):
        cond = _eval(node.test, env, num_vars)
        then = _eval(node.body, env, num_vars)
        other = _eval(node.orelse, env, num_vars)
        return (cond & then) | (~cond & other)
    raise ExpressionError(f"unsupported syntax {type(node).__name__}")

"""Maiorana–McFarland bent functions and hidden-shift instances.

Sec. VI.B of the paper: ``f(x, y) = x . pi(y) ^ h(y)`` over 2n
variables, with ``pi`` a permutation of n-bit vectors and ``h`` an
arbitrary Boolean function.  The dual is
``f~(x, y) = pi^{-1}(x) . y ^ h(pi^{-1}(x))``.

Variable layout: x-variables occupy input-index bits ``0..n-1``,
y-variables bits ``n..2n-1``.  (The interleaved qubit layout of the
paper's Fig. 7 is a *circuit* choice handled by the oracle builders,
not by the function representation.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .permutation import BitPermutation
from .spectral import dual_bent, is_bent
from .truth_table import TruthTable


@dataclass(frozen=True)
class MaioranaMcFarland:
    """A Maiorana–McFarland bent function f(x, y) = x.pi(y) ^ h(y)."""

    pi: BitPermutation
    h: TruthTable

    def __post_init__(self) -> None:
        if self.h.num_vars != self.pi.num_bits:
            raise ValueError("h must be over the same n variables as pi")

    @property
    def half_vars(self) -> int:
        return self.pi.num_bits

    @property
    def num_vars(self) -> int:
        return 2 * self.pi.num_bits

    # ------------------------------------------------------------------
    @classmethod
    def inner_product(cls, half_vars: int) -> "MaioranaMcFarland":
        """The IP function: pi = identity, h = 0 (self-dual)."""
        return cls(
            BitPermutation.identity(half_vars), TruthTable(half_vars)
        )

    @classmethod
    def random(
        cls, half_vars: int, seed: Optional[int] = None
    ) -> "MaioranaMcFarland":
        rng = random.Random(seed)
        pi = BitPermutation.random(half_vars, seed=rng.randrange(2**31))
        h = TruthTable(half_vars, rng.getrandbits(1 << half_vars))
        return cls(pi, h)

    # ------------------------------------------------------------------
    def evaluate(self, x: int, y: int) -> int:
        """f(x, y) = x . pi(y) ^ h(y)."""
        return (bin(x & self.pi(y)).count("1") & 1) ^ self.h(y)

    def __call__(self, xy: int) -> int:
        n = self.half_vars
        x = xy & ((1 << n) - 1)
        y = xy >> n
        return self.evaluate(x, y)

    def truth_table(self) -> TruthTable:
        table = TruthTable(self.num_vars)
        for xy in range(1 << self.num_vars):
            if self(xy):
                table.bits |= 1 << xy
        return table

    def dual(self) -> "MaioranaMcFarlandDual":
        """Structured dual f~(x, y) = pi^{-1}(x).y ^ h(pi^{-1}(x))."""
        return MaioranaMcFarlandDual(self.pi.inverse(), self.h)

    def shifted_table(self, shift: int) -> TruthTable:
        """g(x) = f(x ^ shift) — the oracle the algorithm queries."""
        return self.truth_table().shift(shift)

    def verify_bent(self) -> bool:
        """Spectral sanity check (always true by construction)."""
        return is_bent(self.truth_table())


@dataclass(frozen=True)
class MaioranaMcFarlandDual:
    """The dual f~(x, y) = pi_inv(x) . y ^ h(pi_inv(x))."""

    pi_inv: BitPermutation
    h: TruthTable

    @property
    def half_vars(self) -> int:
        return self.pi_inv.num_bits

    @property
    def num_vars(self) -> int:
        return 2 * self.pi_inv.num_bits

    def evaluate(self, x: int, y: int) -> int:
        pre = self.pi_inv(x)
        return (bin(pre & y).count("1") & 1) ^ self.h(pre)

    def __call__(self, xy: int) -> int:
        n = self.half_vars
        x = xy & ((1 << n) - 1)
        y = xy >> n
        return self.evaluate(x, y)

    def truth_table(self) -> TruthTable:
        table = TruthTable(self.num_vars)
        for xy in range(1 << self.num_vars):
            if self(xy):
                table.bits |= 1 << xy
        return table


@dataclass(frozen=True)
class HiddenShiftInstance:
    """A full problem instance: bent f, hidden shift s, oracle g.

    ``g(x) = f(x ^ s)``; the solver gets oracle access to g and to the
    dual f~ and must recover s (Definition 1 of the paper).
    """

    function: MaioranaMcFarland
    shift: int

    def __post_init__(self) -> None:
        if not 0 <= self.shift < (1 << self.function.num_vars):
            raise ValueError("shift out of range")

    @property
    def num_vars(self) -> int:
        return self.function.num_vars

    def g_table(self) -> TruthTable:
        return self.function.shifted_table(self.shift)

    def f_table(self) -> TruthTable:
        return self.function.truth_table()

    def dual_table(self) -> TruthTable:
        """Dual from the MM structure; equals the spectral dual."""
        return self.function.dual().truth_table()

    def spectral_dual_table(self) -> TruthTable:
        return dual_bent(self.f_table())

    @classmethod
    def random(
        cls, half_vars: int, seed: Optional[int] = None
    ) -> "HiddenShiftInstance":
        rng = random.Random(seed)
        function = MaioranaMcFarland.random(
            half_vars, seed=rng.randrange(2**31)
        )
        shift = rng.randrange(1 << (2 * half_vars))
        return cls(function, shift)

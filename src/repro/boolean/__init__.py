"""Boolean function layer: truth tables, ESOPs, BDDs, networks, bent functions."""

from .bdd import ONE, ZERO, Bdd, BddNode
from .bent import HiddenShiftInstance, MaioranaMcFarland, MaioranaMcFarlandDual
from .cube import Cube, esop_evaluate, esop_to_truth_table
from .esop import (
    best_fprm,
    exorcism,
    fprm,
    minimize_esop,
    minterm_cover,
    pprm,
)
from .expression import (
    ExpressionError,
    function_arity,
    predicate_to_truth_table,
)
from .network import LogicNetwork, Lut, LutNetwork, lut_map
from .permutation import BitPermutation
from .spectral import (
    autocorrelation,
    correlation,
    dual_bent,
    find_shift_classically,
    fwht,
    is_bent,
    is_perfectly_nonlinear,
    linear_structure,
    nonlinearity,
    walsh_spectrum,
)
from .truth_table import MultiTruthTable, TruthTable

__all__ = [
    "ONE",
    "ZERO",
    "Bdd",
    "BddNode",
    "HiddenShiftInstance",
    "MaioranaMcFarland",
    "MaioranaMcFarlandDual",
    "Cube",
    "esop_evaluate",
    "esop_to_truth_table",
    "best_fprm",
    "exorcism",
    "fprm",
    "minimize_esop",
    "minterm_cover",
    "pprm",
    "ExpressionError",
    "function_arity",
    "predicate_to_truth_table",
    "LogicNetwork",
    "Lut",
    "LutNetwork",
    "lut_map",
    "BitPermutation",
    "autocorrelation",
    "correlation",
    "dual_bent",
    "find_shift_classically",
    "fwht",
    "is_bent",
    "is_perfectly_nonlinear",
    "linear_structure",
    "nonlinearity",
    "walsh_spectrum",
    "MultiTruthTable",
    "TruthTable",
]

"""Truth-table representations of Boolean functions.

:class:`TruthTable` is a single-output function ``f : B^n -> B`` stored
as a ``2^n``-bit integer bitmask (bit ``x`` holds ``f(x)``); variable
``i`` is bit ``i`` of the input index (x1 in the paper's examples is
the least-significant variable).  :class:`MultiTruthTable` bundles
``m`` outputs ``f : B^n -> B^m``.

These are the explicit representations that feed the reversible
synthesis algorithms of Sec. V.
"""

from __future__ import annotations

import operator
from functools import reduce
from typing import Callable, Iterable, List, Sequence


class TruthTable:
    """Single-output Boolean function over ``num_vars`` variables."""

    __slots__ = ("num_vars", "bits")

    def __init__(self, num_vars: int, bits: int = 0):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        if num_vars > 24:
            raise ValueError("explicit truth table too large (num_vars > 24)")
        self.num_vars = num_vars
        mask = (1 << (1 << num_vars)) - 1
        self.bits = bits & mask

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls, num_vars: int, func: Callable[..., object]
    ) -> "TruthTable":
        """Tabulate ``func(x_0, ..., x_{n-1})`` (arguments are bools)."""
        bits = 0
        for x in range(1 << num_vars):
            args = [bool((x >> i) & 1) for i in range(num_vars)]
            if func(*args):
                bits |= 1 << x
        return cls(num_vars, bits)

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        """Build from an explicit output list of length ``2^n``."""
        size = len(values)
        num_vars = size.bit_length() - 1
        if 1 << num_vars != size:
            raise ValueError("values length must be a power of two")
        bits = 0
        for x, value in enumerate(values):
            if value:
                bits |= 1 << x
        return cls(num_vars, bits)

    @classmethod
    def from_hex(cls, num_vars: int, hex_string: str) -> "TruthTable":
        return cls(num_vars, int(hex_string, 16))

    @classmethod
    def constant(cls, num_vars: int, value: bool) -> "TruthTable":
        bits = (1 << (1 << num_vars)) - 1 if value else 0
        return cls(num_vars, bits)

    @classmethod
    def projection(cls, num_vars: int, var: int) -> "TruthTable":
        """The function f(x) = x_var."""
        if not 0 <= var < num_vars:
            raise ValueError("projection variable out of range")
        bits = 0
        for x in range(1 << num_vars):
            if (x >> var) & 1:
                bits |= 1 << x
        return cls(num_vars, bits)

    @classmethod
    def inner_product(cls, half_vars: int) -> "TruthTable":
        """IP function ``f(x, y) = x . y`` on ``2 * half_vars`` variables.

        x-variables are the low indices ``0..half_vars-1``, y-variables
        the rest.  Built bit-parallel so it stays fast up to the
        package's 24-variable truth-table limit.
        """
        import numpy as np

        n = half_vars
        indices = np.arange(1 << (2 * n), dtype=np.uint64)
        x = indices & np.uint64((1 << n) - 1)
        y = indices >> np.uint64(n)
        conj = (x & y).astype(np.uint64)
        parity = np.zeros_like(conj, dtype=np.uint8)
        for bit in range(n):
            parity ^= ((conj >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)
        return cls.from_numpy(2 * n, parity)

    @classmethod
    def from_numpy(cls, num_vars: int, values) -> "TruthTable":
        """Build from a numpy 0/1 array of length ``2^n``."""
        import numpy as np

        packed = np.packbits(
            np.asarray(values, dtype=np.uint8), bitorder="little"
        )
        return cls(num_vars, int.from_bytes(packed.tobytes(), "little"))

    def to_numpy(self):
        """The output vector as a numpy uint8 array of length ``2^n``."""
        import numpy as np

        num_bytes = max(1, (self.size + 7) // 8)
        raw = np.frombuffer(
            self.bits.to_bytes(num_bytes, "little"), dtype=np.uint8
        )
        return np.unpackbits(raw, bitorder="little")[: self.size]

    # ------------------------------------------------------------------
    # evaluation / inspection
    # ------------------------------------------------------------------
    def __call__(self, x: int) -> int:
        return (self.bits >> x) & 1

    def evaluate(self, assignment: Sequence[int]) -> int:
        x = sum((1 << i) for i, bit in enumerate(assignment) if bit)
        return self(x)

    @property
    def size(self) -> int:
        return 1 << self.num_vars

    def count_ones(self) -> int:
        return bin(self.bits).count("1")

    def is_constant(self) -> bool:
        return self.bits == 0 or self.bits == (1 << self.size) - 1

    def is_balanced(self) -> bool:
        return self.count_ones() == self.size // 2

    def support(self) -> List[int]:
        """Variables the function actually depends on."""
        return [
            var
            for var in range(self.num_vars)
            if self.cofactor(var, 0) != self.cofactor(var, 1)
        ]

    def values(self) -> List[int]:
        return [(self.bits >> x) & 1 for x in range(self.size)]

    def to_hex(self) -> str:
        width = max(1, self.size // 4)
        return format(self.bits, f"0{width}x")

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError("truth tables over different variable counts")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.num_vars == other.num_vars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.bits))

    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor: fix ``x_var = value``; same variable count
        (the fixed variable becomes don't-care)."""
        bits = 0
        for x in range(self.size):
            fixed = (x & ~(1 << var)) | (value << var)
            if self(fixed):
                bits |= 1 << x
        return TruthTable(self.num_vars, bits)

    def shift(self, s: int) -> "TruthTable":
        """Input shift: g(x) = f(x ^ s) — the paper's ``f(x + s)``."""
        bits = 0
        for x in range(self.size):
            if self(x ^ s):
                bits |= 1 << x
        return TruthTable(self.num_vars, bits)

    def permute_vars(self, permutation: Sequence[int]) -> "TruthTable":
        """Relabel variables: new variable i is old ``permutation[i]``."""
        if sorted(permutation) != list(range(self.num_vars)):
            raise ValueError("not a variable permutation")
        bits = 0
        for x in range(self.size):
            old = 0
            for new_var, old_var in enumerate(permutation):
                if (x >> new_var) & 1:
                    old |= 1 << old_var
            if self(old):
                bits |= 1 << x
        return TruthTable(self.num_vars, bits)

    def extend(self, num_vars: int) -> "TruthTable":
        """Re-express over a larger variable set (new vars are don't-care)."""
        if num_vars < self.num_vars:
            raise ValueError("cannot shrink a truth table")
        out = TruthTable(num_vars)
        small = self.size
        for x in range(1 << num_vars):
            if self(x & (small - 1)):
                out.bits |= 1 << x
        return out

    def __str__(self) -> str:
        return "".join(str(self(x)) for x in reversed(range(self.size)))

    def __repr__(self) -> str:
        return f"TruthTable({self.num_vars}, 0x{self.to_hex()})"


class MultiTruthTable:
    """Multi-output function ``f : B^n -> B^m`` as a list of tables."""

    def __init__(self, outputs: Sequence[TruthTable]):
        if not outputs:
            raise ValueError("need at least one output")
        num_vars = outputs[0].num_vars
        for table in outputs:
            if table.num_vars != num_vars:
                raise ValueError("outputs over differing variable counts")
        self.outputs = list(outputs)
        self.num_vars = num_vars

    @classmethod
    def from_function(
        cls, num_vars: int, num_outputs: int, func: Callable[[int], int]
    ) -> "MultiTruthTable":
        """Tabulate an integer-valued ``func(x) -> y`` with m output bits."""
        tables = [TruthTable(num_vars) for _ in range(num_outputs)]
        for x in range(1 << num_vars):
            y = func(x)
            for j in range(num_outputs):
                if (y >> j) & 1:
                    tables[j].bits |= 1 << x
        return cls(tables)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def __call__(self, x: int) -> int:
        return reduce(
            operator.or_,
            ((table(x) << j) for j, table in enumerate(self.outputs)),
            0,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MultiTruthTable)
            and self.outputs == other.outputs
        )

    def __getitem__(self, index: int) -> TruthTable:
        return self.outputs[index]

    def image(self) -> List[int]:
        return [self(x) for x in range(1 << self.num_vars)]

    def is_reversible(self) -> bool:
        """True if n == m and the function is a bijection."""
        if self.num_outputs != self.num_vars:
            return False
        return len(set(self.image())) == 1 << self.num_vars

    def __repr__(self) -> str:
        return (
            f"MultiTruthTable({self.num_vars} -> {self.num_outputs})"
        )

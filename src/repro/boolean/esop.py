"""ESOP (exclusive sum-of-products) extraction and minimization.

ESOP expressions are the input of ESOP-based reversible synthesis
(Sec. V): every cube becomes one multiple-controlled Toffoli gate, so
fewer/shorter cubes mean cheaper circuits.  The paper cites
pseudo-Kronecker expressions [59] and fast heuristic minimization
(exorcism) [60]; this module implements the standard ladder:

* :func:`pprm` — positive-polarity Reed-Muller (unique canonical ESOP),
  via the butterfly (Möbius) transform.
* :func:`fprm` — fixed-polarity Reed-Muller for a given polarity
  vector; :func:`best_fprm` searches polarities (exhaustively up to a
  budget, greedily beyond).
* :func:`exorcism` — distance-based cube merging (exorlink distance 0,
  1 and 2) as a fast post-pass.
* :func:`minimize_esop` — the convenience entry point combining them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .cube import Cube, esop_to_truth_table
from .truth_table import TruthTable


def pprm(table: TruthTable) -> List[Cube]:
    """Positive-polarity Reed-Muller expansion.

    Computes the Möbius transform of the function: coefficient ``c[S]``
    of monomial ``AND_{i in S} x_i`` is obtained by the butterfly over
    the truth vector (bit-parallel via numpy, so 20+ variable tables —
    the paper's scalability regime — stay tractable).
    """
    import numpy as np

    n = table.num_vars
    coeffs = table.to_numpy()
    view = coeffs.reshape([2] * n) if n else coeffs
    for var in range(n):
        axis = n - 1 - var  # axis for input bit `var` (big-endian)
        lower = view.take(0, axis=axis)
        upper = view.take(1, axis=axis)
        upper ^= lower
        # take() copies; write back through slicing instead
        slicer = [slice(None)] * n
        slicer[axis] = 1
        view[tuple(slicer)] = upper
    flat = view.reshape(-1)
    return [Cube(mask=int(s), polarity=int(s)) for s in np.flatnonzero(flat)]


def fprm(table: TruthTable, polarity: int) -> List[Cube]:
    """Fixed-polarity Reed-Muller expansion.

    Bit ``i`` of ``polarity`` = 1 means variable ``i`` appears only in
    negative phase.  The expansion is computed by substituting
    ``x_i <- x_i ^ 1`` for negated variables (input relabelling), taking
    the PPRM there, and flipping the cube polarities back.
    """
    n = table.num_vars
    shifted = table.shift(polarity)  # g(x) = f(x ^ polarity)
    cubes = pprm(shifted)
    return [
        Cube(cube.mask, cube.polarity ^ (polarity & cube.mask))
        for cube in cubes
    ]


def _esop_cost(cubes: Sequence[Cube]) -> Tuple[int, int]:
    """Cost order: (#cubes, total literal count)."""
    return len(cubes), sum(c.num_literals() for c in cubes)


def best_fprm(
    table: TruthTable, max_exhaustive_vars: int = 10
) -> Tuple[List[Cube], int]:
    """Search fixed polarities for the cheapest FPRM.

    Exhaustive over all ``2^n`` polarities when ``n`` is small, greedy
    bit-flip descent otherwise.  Returns (cubes, polarity).
    """
    n = table.num_vars
    if n <= max_exhaustive_vars:
        best_cubes = None
        best_pol = 0
        for polarity in range(1 << n):
            cubes = fprm(table, polarity)
            if best_cubes is None or _esop_cost(cubes) < _esop_cost(best_cubes):
                best_cubes = cubes
                best_pol = polarity
        return best_cubes if best_cubes is not None else [], best_pol
    # greedy descent from the all-positive polarity
    polarity = 0
    best_cubes = fprm(table, polarity)
    improved = True
    while improved:
        improved = False
        for var in range(n):
            candidate = polarity ^ (1 << var)
            cubes = fprm(table, candidate)
            if _esop_cost(cubes) < _esop_cost(best_cubes):
                best_cubes = cubes
                polarity = candidate
                improved = True
    return best_cubes, polarity


# ----------------------------------------------------------------------
# exorcism-style cube merging
# ----------------------------------------------------------------------
def _merge_distance_one(a: Cube, b: Cube) -> Cube:
    """Merge two cubes at exorlink distance 1 into a single cube."""
    diff_mask = a.mask ^ b.mask
    if diff_mask:
        # one cube contains an extra variable j: m XOR (m & xj) = m & ~xj
        var_bit = diff_mask
        wide, narrow = (a, b) if a.mask & var_bit else (b, a)
        polarity = wide.polarity ^ var_bit  # flip the j literal
        return Cube(wide.mask, polarity & wide.mask)
    # same mask, one opposite literal: (m&xj) XOR (m&~xj) = m without j
    pol_diff = a.polarity ^ b.polarity
    return Cube(a.mask & ~pol_diff, a.polarity & ~pol_diff)


def _exorlink_two(a: Cube, b: Cube) -> List[Tuple[Cube, Cube]]:
    """Alternative 2-cube rewritings of ``a XOR b`` at distance 2.

    For each of the two differing positions, produce the pair obtained
    by "transferring" that position (standard exorlink-2).  Correctness
    is guaranteed by construction and double-checked by the caller.
    """
    positions: List[int] = []
    diff_mask = a.mask ^ b.mask
    shared = a.mask & b.mask
    pol_diff = (a.polarity ^ b.polarity) & shared
    for var in range(max(a.mask | b.mask, 1).bit_length()):
        bit = 1 << var
        if diff_mask & bit or pol_diff & bit:
            positions.append(var)
    if len(positions) != 2:
        return []
    alternatives = []
    for var in positions:
        bit = 1 << var
        # build a' = a with position var changed to agree with b
        if a.mask & bit and b.mask & bit:
            new_a = Cube(a.mask, (a.polarity & ~bit) | (b.polarity & bit))
        elif b.mask & bit:  # a lacks var, b has it: give a the b literal
            new_a = Cube(a.mask | bit, (a.polarity | (b.polarity & bit)))
        else:  # a has var, b lacks it: drop it from a
            new_a = Cube(a.mask & ~bit, a.polarity & ~bit)
        # the residual pair is (new_a, merge of (a ^ new_a) with b):
        # a ^ b = new_a ^ (new_a ^ a ^ b); new_a^a differs from each other
        # in exactly position var, and (new_a ^ a ^ b) is a cube at
        # distance 1 from b -- recompute it via truth-table-free rules:
        residual = _residual_cube(a, new_a, b)
        if residual is not None:
            alternatives.append((new_a, residual))
    return alternatives


def _residual_cube(a: Cube, new_a: Cube, b: Cube) -> Optional[Cube]:
    """Find cube r with a ^ b = new_a ^ r, verified over the joint support."""
    support = a.mask | b.mask | new_a.mask
    num_vars = max(support.bit_length(), 1)
    target = 0
    for x in range(1 << num_vars):
        value = a.evaluate(x) ^ b.evaluate(x) ^ new_a.evaluate(x)
        if value:
            target |= 1 << x
    # the residual must itself be a cube: try cubes over the support
    table = TruthTable(num_vars, target)
    return _table_as_cube(table)


def _table_as_cube(table: TruthTable) -> Optional[Cube]:
    """Return the cube equal to ``table`` or None if it is not a cube."""
    ones = [x for x in range(table.size) if table(x)]
    if not ones:
        return None
    and_mask = ones[0]
    or_mask = 0
    for x in ones:
        and_mask &= x
        or_mask |= x
    fixed = ~(and_mask ^ or_mask) & ((1 << table.num_vars) - 1)
    cube = Cube(fixed, and_mask & fixed)
    if len(ones) != 1 << (table.num_vars - cube.num_literals()):
        return None
    for x in ones:
        if not cube.evaluate(x):
            return None
    return cube


def exorcism(cubes: Sequence[Cube], rounds: int = 4) -> List[Cube]:
    """Greedy exorlink minimization of an ESOP cover.

    Repeatedly removes duplicate cubes (distance 0 pairs cancel under
    XOR), merges distance-1 pairs, and applies distance-2 rewrites when
    they reduce the literal count or enable further merges.
    """
    current = list(cubes)
    for _ in range(rounds):
        before = _esop_cost(current)
        current = _merge_pass(current)
        current = _distance_two_pass(current)
        if _esop_cost(current) >= before:
            break
    return current


def _merge_pass(cubes: List[Cube]) -> List[Cube]:
    """Cancel equal cubes and merge distance-1 pairs to fixpoint."""
    changed = True
    current = list(cubes)
    while changed:
        changed = False
        # distance-0: equal cubes cancel pairwise
        seen = {}
        result: List[Cube] = []
        for cube in current:
            if cube in seen:
                result.remove(cube)
                del seen[cube]
                changed = True
            else:
                seen[cube] = True
                result.append(cube)
        current = result
        # distance-1 merges
        merged = None
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                if current[i].distance(current[j]) == 1:
                    merged = (i, j, _merge_distance_one(current[i], current[j]))
                    break
            if merged:
                break
        if merged:
            i, j, cube = merged
            current = [
                c for k, c in enumerate(current) if k not in (i, j)
            ]
            current.append(cube)
            changed = True
    return current


def _distance_two_pass(cubes: List[Cube]) -> List[Cube]:
    """Try exorlink-2 rewrites that lower the literal count."""
    current = list(cubes)
    for i in range(len(current)):
        for j in range(i + 1, len(current)):
            a, b = current[i], current[j]
            if a.distance(b) != 2:
                continue
            for new_a, new_b in _exorlink_two(a, b):
                old_cost = a.num_literals() + b.num_literals()
                new_cost = new_a.num_literals() + new_b.num_literals()
                if new_cost < old_cost:
                    current[i], current[j] = new_a, new_b
                    return _merge_pass(current)
    return current


def minterm_cover(table: TruthTable) -> List[Cube]:
    """The trivial ESOP: one minterm cube per satisfying input."""
    return [
        Cube.minterm(table.num_vars, x)
        for x in range(table.size)
        if table(x)
    ]


def minimize_esop(table: TruthTable, effort: str = "medium") -> List[Cube]:
    """Produce a small ESOP cover of ``table``.

    Args:
        table: function to cover.
        effort: ``"fast"`` = PPRM + exorcism; ``"medium"`` adds a
            polarity search; ``"high"`` additionally seeds exorcism
            from the minterm cover and keeps the best result.

    The returned cover always satisfies
    ``esop_to_truth_table(cubes, n) == table`` (tests enforce it).
    """
    if table.bits == 0:
        return []
    candidates: List[List[Cube]] = []
    base = pprm(table)
    candidates.append(exorcism(base))
    if effort in ("medium", "high"):
        fprm_cubes, _ = best_fprm(table)
        candidates.append(exorcism(fprm_cubes))
    if effort == "high":
        candidates.append(exorcism(minterm_cover(table), rounds=8))
    best = min(candidates, key=_esop_cost)
    return best

"""Device-topology routing — targeting real chips (Sec. VII).

Running the Fig. 4 circuit "on the IBM Quantum Experience chip"
implies one more compilation stage the paper delegates to the vendor
stack: two-qubit gates only execute between *coupled* qubits, so the
circuit must be mapped onto the device graph with SWAP insertion.

This module provides that substrate:

* :class:`CouplingMap` — an undirected device graph with shortest-path
  queries (the early IBM QE devices are provided as presets);
* :func:`route_circuit` — a greedy SWAP router: gates execute when
  their qubits are adjacent under the current logical->physical layout,
  otherwise SWAPs move them together along a shortest path;
* :func:`verify_routing` — semantic check: the routed circuit equals
  the original up to the final layout permutation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate


class RoutingError(RuntimeError):
    """Raised for unroutable circuits or malformed coupling maps."""


class CouplingMap:
    """Undirected device connectivity graph."""

    def __init__(self, num_qubits: int, edges: Sequence[Tuple[int, int]]):
        self.num_qubits = num_qubits
        self.edges: Set[FrozenSet[int]] = set()
        self.neighbors: Dict[int, Set[int]] = {
            q: set() for q in range(num_qubits)
        }
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
                raise RoutingError(f"bad edge ({a}, {b})")
            self.edges.add(frozenset((a, b)))
            self.neighbors[a].add(b)
            self.neighbors[b].add(a)
        self._distances: Optional[List[List[int]]] = None

    # presets ------------------------------------------------------------
    @classmethod
    def ibm_qx2(cls) -> "CouplingMap":
        """The 5-qubit IBM QE 'bowtie' (ibmqx2/sparrow) topology."""
        return cls(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])

    @classmethod
    def ibm_qx4(cls) -> "CouplingMap":
        """The 5-qubit ibmqx4 (raven) topology."""
        return cls(5, [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)])

    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        """Linear nearest-neighbour chain."""
        return cls(num_qubits, [(q, q + 1) for q in range(num_qubits - 1)])

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
        return cls(num_qubits, edges)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """2D lattice (the 16/17-qubit device generation)."""
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(rows * cols, edges)

    @classmethod
    def full(cls, num_qubits: int) -> "CouplingMap":
        edges = [
            (a, b)
            for a in range(num_qubits)
            for b in range(a + 1, num_qubits)
        ]
        return cls(num_qubits, edges)

    # queries ------------------------------------------------------------
    def connected(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self.edges

    def distance(self, a: int, b: int) -> int:
        if self._distances is None:
            self._distances = self._all_pairs()
        d = self._distances[a][b]
        if d < 0:
            raise RoutingError(f"qubits {a} and {b} are disconnected")
        return d

    def shortest_path(self, a: int, b: int) -> List[int]:
        """BFS path from a to b inclusive."""
        if a == b:
            return [a]
        parents = {a: a}
        queue = deque([a])
        while queue:
            node = queue.popleft()
            for nxt in self.neighbors[node]:
                if nxt not in parents:
                    parents[nxt] = node
                    if nxt == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    queue.append(nxt)
        raise RoutingError(f"qubits {a} and {b} are disconnected")

    def _all_pairs(self) -> List[List[int]]:
        out = []
        for start in range(self.num_qubits):
            dist = [-1] * self.num_qubits
            dist[start] = 0
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for nxt in self.neighbors[node]:
                    if dist[nxt] < 0:
                        dist[nxt] = dist[node] + 1
                        queue.append(nxt)
            out.append(dist)
        return out


@dataclass
class RoutingResult:
    """Routed circuit plus layout bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: List[int]    # logical -> physical at the start
    final_layout: List[int]      # logical -> physical at the end
    swap_count: int
    #: full device-wire permutation: content initially at physical wire
    #: c ends the routed circuit at wire position_of[c]
    position_of: List[int] = field(default_factory=list)

    def logical_of_physical(self) -> Dict[int, int]:
        return {p: l for l, p in enumerate(self.final_layout)}


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Sequence[int]] = None,
) -> RoutingResult:
    """Map ``circuit`` onto ``coupling`` by greedy SWAP insertion.

    Only 1- and 2-qubit gates (plus measurements/barriers) are
    routable; run the Clifford+T mapping first.  When a two-qubit gate
    spans non-adjacent physical qubits, SWAPs walk one operand along a
    shortest path until they meet.

    Args:
        circuit: the (already lowered) circuit to place.
        coupling: the device connectivity graph.
        initial_layout: optional logical-to-physical starting layout;
            identity by default.

    Returns:
        A :class:`RoutingResult` with the legal circuit, the SWAP
        count and the initial/final layouts.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise RoutingError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    if initial_layout is None:
        layout = list(range(circuit.num_qubits))
    else:
        layout = list(initial_layout)
        if sorted(layout) != sorted(set(layout)) or len(layout) != circuit.num_qubits:
            raise RoutingError("initial layout must be injective")
    physical_of = list(layout)  # logical -> physical

    routed = QuantumCircuit(
        coupling.num_qubits, circuit.num_clbits, circuit.name + "_routed"
    )
    swap_count = 0
    position_of = list(range(coupling.num_qubits))

    def swap_physical(a: int, b: int) -> None:
        nonlocal swap_count
        routed.swap(a, b)
        swap_count += 1
        # update the logical->physical map and the full wire permutation
        for logical, phys in enumerate(physical_of):
            if phys == a:
                physical_of[logical] = b
            elif phys == b:
                physical_of[logical] = a
        for content, position in enumerate(position_of):
            if position == a:
                position_of[content] = b
            elif position == b:
                position_of[content] = a

    for gate in circuit.gates:
        if gate.name == "barrier":
            routed.barrier(*(physical_of[q] for q in gate.targets))
            continue
        qubits = gate.qubits
        if len(qubits) == 1:
            routed.append(gate.remap({qubits[0]: physical_of[qubits[0]]}))
            continue
        if len(qubits) != 2:
            raise RoutingError(
                f"gate {gate.name!r} spans {len(qubits)} qubits; map to "
                "1/2-qubit gates before routing"
            )
        a, b = physical_of[qubits[0]], physical_of[qubits[1]]
        if not coupling.connected(a, b):
            path = coupling.shortest_path(a, b)
            # walk `a` down the path until adjacent to b
            for step in path[1:-1]:
                swap_physical(a, step)
                a = step
        mapping = {qubits[0]: a, qubits[1]: physical_of[qubits[1]]}
        routed.append(gate.remap(mapping))
    return RoutingResult(
        circuit=routed,
        initial_layout=list(layout),
        final_layout=list(physical_of),
        swap_count=swap_count,
        position_of=position_of,
    )


def verify_routing(
    original: QuantumCircuit,
    result: RoutingResult,
    atol: float = 1e-9,
) -> bool:
    """Check routed == permute(final_layout) . original . permute(init).

    Practical for small widths only (dense unitaries).
    """
    import numpy as np

    from ..core.unitary import allclose_up_to_global_phase, circuit_unitary

    n = result.circuit.num_qubits
    # lift the original onto the device width using the initial layout
    lifted = QuantumCircuit(n)
    mapping = {q: result.initial_layout[q] for q in range(original.num_qubits)}
    for gate in original.gates:
        if gate.is_measurement or gate.name == "barrier":
            continue
        lifted.append(gate.remap(mapping))
    routed_unitary = circuit_unitary(
        _strip_measurements(result.circuit)
    )
    original_unitary = circuit_unitary(lifted)
    # output permutation: the content of every device wire moved from
    # its initial position to position_of (logical wires included)
    perm = np.zeros((1 << n, 1 << n))
    for basis in range(1 << n):
        target = 0
        for bit in range(n):
            value = (basis >> bit) & 1
            target |= value << result.position_of[bit]
        perm[target, basis] = 1.0
    return allclose_up_to_global_phase(
        routed_unitary, perm @ original_unitary, atol=atol
    )


def _strip_measurements(circuit: QuantumCircuit) -> QuantumCircuit:
    out = QuantumCircuit(circuit.num_qubits)
    for gate in circuit.gates:
        if gate.is_measurement or gate.name == "barrier":
            continue
        out.append(gate)
    return out

"""Relative-phase Toffoli gates (Maslov [42]).

A relative-phase Toffoli (RCCX) equals CCX up to a diagonal phase on
the computational basis; it costs 4 T gates instead of 7.  It is safe
wherever the diagonal provably cancels — in particular in
compute/uncompute ladders around a diagonal-commuting center gate,
which is exactly how the ``rptm`` mapping uses it.
"""

from __future__ import annotations

from ..core.circuit import QuantumCircuit


def rccx(c1: int, c2: int, target: int, num_qubits: int) -> QuantumCircuit:
    """Relative-phase Toffoli, T-count 4 (the "simplified Toffoli").

    Implements CCX times a diagonal phase; its adjoint undoes it
    exactly, so compute/uncompute pairs behave like true Toffolis.
    """
    circ = QuantumCircuit(num_qubits, name="rccx")
    circ.h(target)
    circ.t(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.cx(c1, target)
    circ.t(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.h(target)
    return circ


def rccx_dagger(c1: int, c2: int, target: int, num_qubits: int) -> QuantumCircuit:
    """Return the adjoint of :func:`rccx` (uncomputes it exactly).

    Args:
        c1: first control qubit index.
        c2: second control qubit index.
        target: target qubit index.
        num_qubits: width of the returned circuit.

    Returns:
        The 4-T relative-phase Toffoli, reversed and conjugated.
    """
    return rccx(c1, c2, target, num_qubits).dagger()

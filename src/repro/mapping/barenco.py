"""MCT-network mapping into Clifford+T — the ``rptm`` command.

Lowers multiple-controlled Toffoli/Z gates to the Clifford+T set:

* 0/1 controls: direct gates;
* 2 controls: the 7-T CCX/CCZ decomposition;
* k >= 3 controls: Barenco ladders [40] —
  - with *clean* ancillae: compute ladder + center CCX + uncompute
    ladder (2(k-2)+1 Toffolis).  With ``relative_phase=True`` the
    ladder Toffolis become RCCX (T-count 4), the provably-safe
    substitution of Maslov [42]; T-count drops from 14(k-2)+7 to
    8(k-2)+7.
  - with *dirty* (borrowed) ancillae: the alternating V-chain that
    works for any initial ancilla value (4(k-2) Toffolis).

:func:`map_to_clifford_t` maps a whole :class:`ReversibleCircuit` (or
quantum circuit with mcx/mcz gates), borrowing idle lines as dirty
ancillae before widening the register with clean ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..core.circuit import QuantumCircuit
from ..core.gates import Gate
from ..synthesis.reversible import ReversibleCircuit
from .clifford_t import ccx_clifford_t
from .relative_phase import rccx, rccx_dagger


class MappingError(RuntimeError):
    """Raised when a gate cannot be lowered."""


def mcx_clean_ancilla(
    controls: Sequence[int],
    target: int,
    ancillae: Sequence[int],
    num_qubits: int,
    relative_phase: bool = True,
) -> QuantumCircuit:
    """k-control X via the clean-ancilla ladder (k-2 ancillae).

    Ancillae must be |0> on entry and are returned to |0>.
    """
    k = len(controls)
    if k < 3:
        raise ValueError("ladder needs at least 3 controls")
    if len(ancillae) < k - 2:
        raise ValueError(f"need {k - 2} clean ancillae")
    circ = QuantumCircuit(num_qubits, name="mcx")
    ladder: List[Tuple[int, int, int]] = []
    # a[0] = c0 & c1; a[i] = a[i-1] & c[i+1]
    ladder.append((controls[0], controls[1], ancillae[0]))
    for i in range(k - 3):
        ladder.append((controls[i + 2], ancillae[i], ancillae[i + 1]))
    make = rccx if relative_phase else (
        lambda a, b, t, n: ccx_clifford_t(a, b, t, n)
    )
    unmake = rccx_dagger if relative_phase else (
        lambda a, b, t, n: ccx_clifford_t(a, b, t, n)
    )
    for c1, c2, tgt in ladder:
        circ.compose(make(c1, c2, tgt, num_qubits))
    circ.compose(
        ccx_clifford_t(controls[-1], ancillae[k - 3], target, num_qubits)
    )
    for c1, c2, tgt in reversed(ladder):
        circ.compose(unmake(c1, c2, tgt, num_qubits))
    return circ


def mcx_dirty_ancilla(
    controls: Sequence[int],
    target: int,
    ancillae: Sequence[int],
    num_qubits: int,
) -> QuantumCircuit:
    """k-control X via the dirty-ancilla V-chain (k-2 borrowed lines).

    Works for arbitrary initial ancilla values and restores them:
    the zig-zag sequence S = [G_k .. G_3, G_2, G_3 .. G_{k-1}] applied
    twice, 4(k-2) Toffolis total.
    """
    k = len(controls)
    if k < 3:
        raise ValueError("V-chain needs at least 3 controls")
    if len(ancillae) < k - 2:
        raise ValueError(f"need {k - 2} dirty ancillae")
    # G_i for i in 2..k: G_2 = CCX(c0, c1, a0);
    # G_i = CCX(c_{i-1}, a_{i-3}, a_{i-2}) for 2 < i < k;
    # G_k = CCX(c_{k-1}, a_{k-3}, target)
    def gate(i: int) -> Tuple[int, int, int]:
        if i == 2:
            return (controls[0], controls[1], ancillae[0])
        if i == k:
            return (controls[k - 1], ancillae[k - 3], target)
        return (controls[i - 1], ancillae[i - 3], ancillae[i - 2])

    sequence = (
        [gate(i) for i in range(k, 1, -1)]
        + [gate(i) for i in range(3, k)]
    )
    circ = QuantumCircuit(num_qubits, name="mcx-dirty")
    for _ in range(2):
        for c1, c2, tgt in sequence:
            circ.compose(ccx_clifford_t(c1, c2, tgt, num_qubits))
    return circ


def map_to_clifford_t(
    circuit: Union[ReversibleCircuit, QuantumCircuit],
    relative_phase: bool = True,
    allow_extra_lines: bool = True,
    prefer_clean: bool = True,
) -> QuantumCircuit:
    """Lower an MCT network (or mcx/mcz-bearing circuit) to Clifford+T.

    Strategy per k-control gate (k >= 3): use shared clean ancilla
    lines (widening the register) for the cheap ladder — with
    ``relative_phase=True`` the ladder Toffolis are RCCX, cutting the
    T-count from 14(k-2)+7 to 8(k-2)+7.  With ``prefer_clean=False``
    (or when widening is forbidden) idle circuit lines are borrowed as
    dirty ancillae instead (V-chain, 4(k-2) full Toffolis).  The output
    satisfies :meth:`QuantumCircuit.is_clifford_t`.

    This is the shell's ``rptm`` command and the pass manager's
    :class:`~repro.pipeline.MapToCliffordTPass`.

    Args:
        circuit: the MCT cascade or multi-controlled-gate circuit.
        relative_phase: use RCCX ladder Toffolis (paper's rptm [42]).
        allow_extra_lines: permit widening the register with clean
            ancillae; raise :class:`MappingError` when mapping is
            impossible without them.
        prefer_clean: prefer clean widening over borrowing idle lines
            as dirty ancillae.

    Returns:
        A pure Clifford+T circuit acting as ``|x>|0> ->
        e^{i phi(x)}|P(x)>|0>`` on the original lines.
    """
    if isinstance(circuit, ReversibleCircuit):
        source = circuit.to_quantum_circuit()
    else:
        source = circuit
    width = source.num_qubits
    max_k = 0
    for gate in source.gates:
        if gate.name in ("mcx", "mcz"):
            max_k = max(max_k, len(gate.controls))
    extra_needed = 0
    if max_k >= 3:
        if prefer_clean and allow_extra_lines:
            extra_needed = max_k - 2
        else:
            idle_worst = width - (max_k + 1)
            extra_needed = max(0, (max_k - 2) - idle_worst)
    if extra_needed and not allow_extra_lines:
        raise MappingError(
            f"mapping needs {extra_needed} extra ancilla lines"
        )
    total = width + extra_needed
    out = QuantumCircuit(total, source.num_clbits, source.name + "_ct")
    clean = list(range(width, total))  # kept clean between gates
    for gate in source.gates:
        _lower_gate(gate, out, width, clean, relative_phase)
    return out


def _lower_gate(
    gate: Gate,
    out: QuantumCircuit,
    width: int,
    clean: List[int],
    relative_phase: bool,
) -> None:
    name = gate.name
    if name in ("mcx", "mcz", "ccx", "ccz"):
        controls = list(gate.controls)
        target = gate.targets[0]
        is_z = name.endswith("z")
        if is_z:
            out.h(target)
        k = len(controls)
        if k == 2:
            out.compose(
                ccx_clifford_t(controls[0], controls[1], target, out.num_qubits)
            )
        else:
            busy = set(controls) | {target}
            dirty = [q for q in range(width) if q not in busy]
            need = k - 2
            if len(clean) >= need:
                sub = mcx_clean_ancilla(
                    controls, target, clean[:need], out.num_qubits,
                    relative_phase=relative_phase,
                )
            elif len(dirty) >= need:
                sub = mcx_dirty_ancilla(
                    controls, target, dirty[:need], out.num_qubits
                )
            else:
                raise MappingError(
                    f"no ancillae available for {k}-control gate"
                )
            out.compose(sub)
        if is_z:
            out.h(target)
        return
    if name == "cz":
        out.h(gate.targets[0])
        out.cx(gate.controls[0], gate.targets[0])
        out.h(gate.targets[0])
        return
    if name in (
        "id", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "cx", "swap", "measure", "reset", "barrier",
    ):
        out.append(gate)
        return
    raise MappingError(f"cannot lower gate {name!r} to Clifford+T")


def t_count_of_mapping(
    circuit: Union[ReversibleCircuit, QuantumCircuit],
    relative_phase: bool = True,
) -> int:
    """Convenience: T-count after mapping."""
    return map_to_clifford_t(circuit, relative_phase=relative_phase).t_count()

"""Toffoli-to-Clifford+T building blocks.

The standard 7-T decompositions of CCX/CCZ [40], [41] plus controlled-
phase helpers.  These are the primitives both mapping passes
(:mod:`repro.mapping.barenco` and :mod:`repro.mapping.relative_phase`)
assemble into full MCT-network mappings.
"""

from __future__ import annotations

from ..core.circuit import QuantumCircuit


def ccx_clifford_t(c1: int, c2: int, target: int, num_qubits: int) -> QuantumCircuit:
    """The textbook T-count-7, T-depth-3 CCX decomposition."""
    circ = QuantumCircuit(num_qubits, name="ccx")
    circ.h(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.cx(c1, target)
    circ.t(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.cx(c1, target)
    circ.t(c2)
    circ.t(target)
    circ.h(target)
    circ.cx(c1, c2)
    circ.t(c1)
    circ.tdg(c2)
    circ.cx(c1, c2)
    return circ


def ccz_clifford_t(c1: int, c2: int, target: int, num_qubits: int) -> QuantumCircuit:
    """CCZ = H(target) CCX H(target); T-count 7."""
    circ = QuantumCircuit(num_qubits, name="ccz")
    circ.h(target)
    circ.compose(ccx_clifford_t(c1, c2, target, num_qubits))
    circ.h(target)
    return circ


def cz_from_cx(control: int, target: int, num_qubits: int) -> QuantumCircuit:
    """Return CZ as H-CNOT-H on ``num_qubits`` wires.

    Args:
        control: control qubit index.
        target: target qubit index (conjugated by Hadamards).
        num_qubits: width of the returned circuit.

    Returns:
        A 3-gate :class:`~repro.core.circuit.QuantumCircuit`.
    """
    circ = QuantumCircuit(num_qubits, name="cz")
    circ.h(target)
    circ.cx(control, target)
    circ.h(target)
    return circ


def swap_from_cx(a: int, b: int, num_qubits: int) -> QuantumCircuit:
    """Return SWAP(a, b) as three CNOTs on ``num_qubits`` wires.

    Args:
        a: first qubit index.
        b: second qubit index.
        num_qubits: width of the returned circuit.

    Returns:
        A 3-CNOT :class:`~repro.core.circuit.QuantumCircuit`.
    """
    circ = QuantumCircuit(num_qubits, name="swap")
    circ.cx(a, b)
    circ.cx(b, a)
    circ.cx(a, b)
    return circ


def controlled_phase_clifford_t(angle_over_pi_4: int) -> str:
    """Not supported: arbitrary phases need Solovay-Kitaev (out of
    scope); multiples of pi/4 are emitted directly by the optimizer."""
    raise NotImplementedError(
        "arbitrary-angle synthesis is outside the paper's scope"
    )

"""Mapping reversible/MCT circuits into the Clifford+T gate set."""

from .barenco import (
    MappingError,
    map_to_clifford_t,
    mcx_clean_ancilla,
    mcx_dirty_ancilla,
    t_count_of_mapping,
)
from .clifford_t import ccx_clifford_t, ccz_clifford_t, cz_from_cx, swap_from_cx
from .relative_phase import rccx, rccx_dagger
from .routing import (
    CouplingMap,
    RoutingError,
    RoutingResult,
    route_circuit,
    verify_routing,
)

__all__ = [
    "MappingError",
    "map_to_clifford_t",
    "mcx_clean_ancilla",
    "mcx_dirty_ancilla",
    "t_count_of_mapping",
    "ccx_clifford_t",
    "ccz_clifford_t",
    "cz_from_cx",
    "swap_from_cx",
    "rccx",
    "rccx_dagger",
    "CouplingMap",
    "RoutingError",
    "RoutingResult",
    "route_circuit",
    "verify_routing",
]
